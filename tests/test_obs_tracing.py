"""End-to-end trace propagation: spans, fork workers, HTTP, the store."""

import json
import urllib.request

import pytest

from repro.core.profile_io import dumps, loads
from repro.obs import (
    TRACE_HEADER,
    TraceContext,
    build_trace_document,
    finish_tracing,
    read_events,
    set_current,
    start_tracing,
)
from repro.obs.context import current
from repro.parallel import ParallelExecutor, fork_available
from repro.store import ProfileStore
from repro.store.server import StoreServer
from repro.telemetry import Telemetry
from repro.telemetry.spans import Span

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="platform lacks the fork start method"
)


def _observed_context(value):
    # Runs inside a pool worker (or inline on the serial path): report
    # the ambient context the executor handed us.
    context = current()
    if context is None:
        return None
    return (context.trace_id, context.span_id, value)


@pytest.fixture(autouse=True)
def clean_ambient():
    yield
    set_current(None)


class TestSpanStamping:
    def test_spans_carry_trace_ids_and_wall_clocks(self):
        telemetry = Telemetry()
        context, events = start_tracing(telemetry)
        with telemetry.span("whomp") as span:
            with telemetry.span("compression"):
                pass
        assert span.trace_id == context.trace_id
        assert len(span.span_id) == 16
        assert span.start_ts > 0.0
        assert span.end_ts >= span.start_ts
        # one stage event per span exit, tagged with the trace
        stages = [r for r in events.tail() if r["kind"] == "stage"]
        assert [r["path"] for r in stages] == ["whomp/compression", "whomp"]
        assert all(r["trace"] == context.trace_id for r in stages)

    def test_untraced_telemetry_spans_stay_unstamped(self):
        telemetry = Telemetry()
        with telemetry.span("whomp") as span:
            pass
        assert span.trace_id is None
        assert span.span_id is None

    def test_absorb_plain_merges_the_timeline(self):
        # Trees absorbed from several workers merge into one node that
        # spans their combined wall-clock window, on one shared clock.
        root = Span("")
        first = Span("whomp")
        first.start_ts, first.end_ts = 100.0, 101.0
        first.trace_id = "a" * 32
        node = root.absorb_plain(first.to_plain())
        second = Span("whomp")
        second.start_ts, second.end_ts = 99.5, 100.5
        second.trace_id = "b" * 32
        assert root.absorb_plain(second.to_plain()) is node
        assert node.start_ts == 99.5
        assert node.end_ts == 101.0
        assert node.trace_id == "a" * 32  # first stamp wins


class TestExecutorPropagation:
    def test_serial_path_sees_the_ambient_context(self):
        telemetry = Telemetry()
        context, events = start_tracing(telemetry)
        outcomes = ParallelExecutor(jobs=1, telemetry=telemetry).map_outcomes(
            _observed_context, [1, 2, 3], label="probe"
        )
        results = [outcome.value for outcome in outcomes]
        assert all(r is not None for r in results)
        assert {r[0] for r in results} == {context.trace_id}
        # the serial path still emits a stage event for the batch
        assert any(
            r["kind"] == "stage" and r["path"] == "probe"
            for r in events.tail()
        )

    @needs_fork
    def test_fork_workers_join_the_trace_as_children(self):
        telemetry = Telemetry()
        context, __ = start_tracing(telemetry)
        results = ParallelExecutor(jobs=2, telemetry=telemetry).map(
            _observed_context, list(range(8)), label="probe"
        )
        assert all(r is not None for r in results)
        # same trace everywhere...
        assert {r[0] for r in results} == {context.trace_id}
        # ...but each chunk runs under its own child span, never the
        # parent's span id verbatim.
        assert context.span_id not in {r[1] for r in results}

    @needs_fork
    def test_untraced_runs_hand_workers_no_context(self):
        results = ParallelExecutor(jobs=2).map(
            _observed_context, list(range(4))
        )
        assert results == [None] * 4


class TestFinishTracing:
    def test_document_round_trips_and_ingests(self, tmp_path):
        telemetry = Telemetry()
        context, events = start_tracing(
            telemetry, trace_out=str(tmp_path / "run.jsonl")
        )
        with telemetry.span("whomp") as span:
            span.add_items(64, "accesses")
        document = finish_tracing(
            telemetry, context, events, meta={"command": "test"}
        )
        assert document["format"] == "trace"
        assert document["trace_id"] == context.trace_id
        assert document["spans"][0]["name"] == "whomp"
        assert current() is None  # ambient cleared

        # it validates under the store's decoders like any profile
        text = dumps(document)
        assert loads(text)["trace_id"] == context.trace_id
        store = ProfileStore(str(tmp_path / "store"))
        record = store.ingest_text(text, "trace")
        assert json.loads(store.get_text(record.run_id)) == json.loads(text)

        # the JSONL sink alone can reconstruct the tree
        persisted = read_events(str(tmp_path / "run.jsonl"))
        final = [r for r in persisted if r["kind"] == "trace"]
        assert len(final) == 1
        assert final[0]["spans"][0]["name"] == "whomp"

    def test_events_are_filtered_to_the_trace(self):
        telemetry = Telemetry()
        context, events = start_tracing(telemetry)
        events.emit("request", trace=context.trace_id)
        events.emit("request", trace="f" * 32)  # someone else's
        document = finish_tracing(telemetry, context, events)
        assert all(
            e["trace"] == context.trace_id for e in document["events"]
        )


class TestHttpPropagation:
    @pytest.fixture()
    def server(self, tmp_path):
        store = ProfileStore(str(tmp_path), cache_size=8)
        instance = StoreServer(store, port=0, telemetry=Telemetry()).start()
        yield instance
        instance.stop()

    @staticmethod
    def fetch(server, path, headers=None):
        request = urllib.request.Request(server.url + path)
        for name, value in (headers or {}).items():
            request.add_header(name, value)
        with urllib.request.urlopen(request, timeout=10) as response:
            return (
                response.headers.get(TRACE_HEADER),
                json.loads(response.read().decode("utf-8")),
            )

    def test_daemon_joins_the_callers_trace(self, server):
        context = TraceContext.new()
        echoed, __ = self.fetch(
            server, "/healthz", {TRACE_HEADER: context.to_header()}
        )
        parsed = TraceContext.from_header(echoed)
        assert parsed is not None
        # same trace, but the daemon's own child span -- not an echo
        # of our span id.
        assert parsed.trace_id == context.trace_id
        assert parsed.span_id != context.span_id

    def test_untraced_requests_stay_untraced(self, server):
        # No inbound trace -> no minted trace: /tracez stays focused on
        # traces callers actually started.
        echoed, __ = self.fetch(server, "/healthz")
        assert echoed is None

    def test_access_log_records_land_in_tracez(self, server):
        context = TraceContext.new()
        for __ in range(3):
            self.fetch(server, "/healthz", {TRACE_HEADER: context.to_header()})
        __, payload = self.fetch(server, f"/tracez?trace={context.trace_id}")
        requests = [
            r for r in payload["records"] if r["kind"] == "request"
        ]
        assert len(requests) == 3
        assert all(r["endpoint"] == "healthz" for r in requests)
        assert all(r["trace"] == context.trace_id for r in requests)

    def test_tracez_summary_lists_traces(self, server):
        context = TraceContext.new()
        self.fetch(server, "/healthz", {TRACE_HEADER: context.to_header()})
        __, payload = self.fetch(server, "/tracez")
        rows = {row["trace_id"]: row for row in payload["traces"]}
        assert context.trace_id in rows
        assert "request" in rows[context.trace_id]["kinds"]

    def test_metricsz_reports_endpoint_latency(self, server):
        for __ in range(5):
            self.fetch(server, "/healthz")
        __, payload = self.fetch(server, "/metricsz")
        summary = payload["endpoints"]["healthz"]
        assert summary["count"] >= 5
        assert summary["p50_seconds"] > 0.0
        assert summary["p99_seconds"] >= summary["p50_seconds"]
