"""175.vpr stand-in: FPGA place-and-route.

Mimics vpr's routing phase: a netlist of nets, each net a heap object
holding its terminal list (one allocation site, many objects); routing a
net walks its terminals with a fixed stride (distinct static
instructions for the x and y fields), reads a static routing-cost grid
at data-dependent cells, queues work through a per-net heap arena, and
commits occupancy updates in a fixed-period pass.  A scalar router
state block is read and updated every terminal, giving LEAP its
constant-location runs.

Net objects are routed with an identical internal pattern -- the
cross-object regularity object-relative profiling exposes -- while the
cost-grid traffic stays irregular in any representation.
"""

from __future__ import annotations

from repro.core.events import AccessKind
from repro.runtime.process import Process
from repro.workloads.base import REGISTRY, Workload

WORD = 8
TERMINAL_BYTES = 16  # (x, y) pair per terminal


@REGISTRY.register
class VprWorkload(Workload):
    name = "vpr"
    description = "place & route: per-net strided walks + cost-grid updates"

    def __init__(
        self,
        scale: float = 1.0,
        seed: int = 0,
        nets: int = 44,
        terminals: int = 96,
        grid: int = 64,
        route_passes: int = 2,
    ) -> None:
        super().__init__(scale=scale, seed=seed)
        self.nets = nets
        self.terminals = terminals
        self.grid = grid
        self.route_passes = route_passes

    def run(self, process: Process) -> None:
        rng = self.rng()
        grid_cells = self.grid * self.grid
        self.declare_cold_statics(process)
        process.declare_static("cost_grid", grid_cells * WORD, type_name="float[]")
        process.declare_static("occupancy", grid_cells * WORD, type_name="int[]")
        process.declare_static("router_state", 4 * WORD, type_name="state")
        cost_grid = process.static("cost_grid").address
        occupancy = process.static("occupancy").address
        state = process.static("router_state").address

        st_term_x = process.instruction("build.store_terminal_x", AccessKind.STORE)
        st_term_y = process.instruction("build.store_terminal_y", AccessKind.STORE)
        ld_term_x = process.instruction("route.load_terminal_x", AccessKind.LOAD)
        ld_term_y = process.instruction("route.load_terminal_y", AccessKind.LOAD)
        ld_cost = process.instruction("route.load_cost", AccessKind.LOAD)
        ld_bbox = process.instruction("route.load_bbox", AccessKind.LOAD)
        st_bbox = process.instruction("route.store_bbox", AccessKind.STORE)
        st_heap = process.instruction("route.store_heap_entry", AccessKind.STORE)
        ld_heap = process.instruction("route.load_heap_entry", AccessKind.LOAD)
        ld_occ = process.instruction("update.load_occupancy", AccessKind.LOAD)
        st_occ = process.instruction("update.store_occupancy", AccessKind.STORE)
        st_cost = process.instruction("update.store_cost", AccessKind.STORE)
        ld_netstat = process.instruction("stats.load_net_header", AccessKind.LOAD)

        self.run_startup(process, sites=7)
        # Build the netlist: one heap object per net, identical fill.
        nets = []
        pins = []
        for __ in range(self.scaled(self.nets)):
            net = process.malloc(
                "vpr.net", self.terminals * TERMINAL_BYTES, type_name="net"
            )
            locations = [rng.randrange(grid_cells) for __ in range(self.terminals)]
            for index in range(self.terminals):
                process.store(st_term_x, net + index * TERMINAL_BYTES)
                process.store(st_term_y, net + index * TERMINAL_BYTES + WORD)
            nets.append(net)
            pins.append(locations)

        # Route: identical walk per net; grid traffic at random cells.
        for __ in range(self.route_passes):
            for net, locations in zip(nets, pins):
                arena = process.malloc(
                    "vpr.heap_arena", self.terminals * WORD, type_name="heap"
                )
                for index in range(self.terminals):
                    process.load(ld_term_x, net + index * TERMINAL_BYTES)
                    process.load(ld_term_y, net + index * TERMINAL_BYTES + WORD)
                    process.load(ld_cost, cost_grid + locations[index] * WORD)
                    process.load(ld_bbox, state)
                    process.store(st_bbox, state)
                    process.store(st_heap, arena + index * WORD)
                # Drain the arena in order.
                for index in range(self.terminals):
                    process.load(ld_heap, arena + index * WORD)
                # Commit occupancy/cost for every third terminal.
                for index in range(0, self.terminals, 3):
                    cell = locations[index]
                    process.load(ld_occ, occupancy + cell * WORD)
                    process.store(st_occ, occupancy + cell * WORD)
                    process.store(st_cost, cost_grid + cell * WORD)
                process.free(arena)
            # Pass statistics: read each net object's header in
            # allocation order -- strongly strided in raw addresses
            # (nets are adjacent) but cross-object for LEAP.
            for net in nets:
                process.load(ld_netstat, net)

        for net in nets:
            process.free(net)
        self.run_shutdown(process, sites=5)
