"""Shared benchmark fixtures.

The benchmark suite regenerates every table and figure of the paper
(`pytest benchmarks/ --benchmark-only`).  One session-scoped
:class:`SuiteContext` is shared so traces and profiles are computed once
each; the per-figure benchmark functions time the profiler/analysis
kernels and assert the paper's *shape* (who wins, by roughly what
factor).

Set ``REPRO_BENCH_SCALE`` to trade fidelity for runtime (default 1.0,
the calibration the paper-shape assertions were tuned at; smaller
scales keep the assertions' loose bounds valid but shift the absolute
numbers).
"""

import os

import pytest

from repro.experiments.context import SuiteContext

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@pytest.fixture(scope="session")
def context():
    return SuiteContext(scale=SCALE)


@pytest.fixture(scope="session")
def traces(context):
    """All benchmark traces, materialized once."""
    return {name: context.trace(name) for name in context.benchmarks}


def once(benchmark, function, *args, **kwargs):
    """Run a heavyweight benchmark body exactly once per measurement."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
