"""Tests for the Separation and Compression Component."""

import pytest

from repro.workloads.registry import create

from repro.compression.rle import DeltaRleCodec
from repro.core.cdc import translate_trace_list
from repro.core.events import AccessKind
from repro.core.scc import HorizontalSequiturSCC, VerticalLMADSCC
from repro.core.tuples import DIMENSIONS, ObjectRelativeAccess


def access(i, g, o, f, t, kind=AccessKind.LOAD):
    return ObjectRelativeAccess(i, g, o, f, t, 8, kind)


class TestHorizontalSCC:
    def test_streams_match_dimensions(self, simple_trace):
        scc = HorizontalSequiturSCC()
        stream = translate_trace_list(simple_trace)
        for item in stream:
            scc.consume(item)
        assert set(scc.grammars) == set(DIMENSIONS)
        for name in DIMENSIONS:
            expanded = scc.grammars[name].expand()
            assert expanded == [a.dimension(name) for a in stream]

    def test_total_sizes(self, simple_trace):
        scc = HorizontalSequiturSCC()
        for item in translate_trace_list(simple_trace):
            scc.consume(item)
        assert scc.total_size() == sum(
            g.size() for g in scc.grammars.values()
        )
        assert scc.total_size_bytes() > 0

    def test_pluggable_compressor(self, simple_trace):
        scc = HorizontalSequiturSCC(compressor=DeltaRleCodec)
        stream = translate_trace_list(simple_trace)
        for item in stream:
            scc.consume(item)
        for name in DIMENSIONS:
            assert scc.grammars[name].expand() == [
                a.dimension(name) for a in stream
            ]


class TestVerticalSCC:
    def test_entries_partition_by_instruction_and_group(self):
        scc = VerticalLMADSCC()
        scc.consume(access(0, 0, 0, 0, 0))
        scc.consume(access(0, 1, 0, 0, 1))
        scc.consume(access(1, 0, 0, 8, 2, AccessKind.STORE))
        entries = scc.finish()
        assert set(entries) == {(0, 0), (0, 1), (1, 0)}

    def test_kind_and_exec_tracking(self):
        scc = VerticalLMADSCC()
        scc.consume(access(0, 0, 0, 0, 0))
        scc.consume(access(0, 0, 0, 8, 1))
        scc.consume(access(1, 0, 0, 0, 2, AccessKind.STORE))
        assert scc.kinds[0] is AccessKind.LOAD
        assert scc.kinds[1] is AccessKind.STORE
        assert scc.exec_counts == {0: 2, 1: 1}

    def test_triples_fed_in_order(self):
        scc = VerticalLMADSCC()
        for t in range(10):
            scc.consume(access(0, 0, 0, t * 8, t))
        entry = scc.finish()[(0, 0)]
        assert len(entry.lmads) == 1
        assert entry.lmads[0].stride == (0, 8, 1)

    def test_budget_respected(self):
        scc = VerticalLMADSCC(budget=2)
        # quadratic offsets: no linear chains longer than 2
        for t in range(40):
            scc.consume(access(0, 0, 0, t * t * 8, t))
        entry = scc.finish()[(0, 0)]
        assert len(entry.lmads) == 2
        assert entry.overflow.count > 0


class TestStagedEqualsStreaming:
    """Property: the staged ``decompose`` + ``compress_streams`` path is
    observationally identical to per-access ``consume`` — the invariant
    both the telemetry-instrumented and the parallel pipelines rely on.
    """

    WORKLOADS = (
        ("micro.array", 0.2),
        ("micro.list", 0.2),
        ("micro.hash", 0.2),
    )

    @pytest.mark.parametrize("name,scale", WORKLOADS)
    def test_vertical_staged_equals_consume(self, name, scale):
        trace = create(name, scale=scale).trace()
        stream = translate_trace_list(trace)

        streaming = VerticalLMADSCC()
        for item in stream:
            streaming.consume(item)

        staged = VerticalLMADSCC()
        substreams = staged.decompose(stream)
        staged.compress_streams(substreams)

        streaming_entries = streaming.finish()
        staged_entries = staged.finish()
        assert staged_entries == streaming_entries
        assert list(staged_entries) == list(streaming_entries)
        assert staged.kinds == streaming.kinds
        assert staged.exec_counts == streaming.exec_counts

    @pytest.mark.parametrize("name,scale", WORKLOADS)
    def test_horizontal_staged_equals_consume(self, name, scale):
        trace = create(name, scale=scale).trace()
        stream = translate_trace_list(trace)

        streaming = HorizontalSequiturSCC()
        for item in stream:
            streaming.consume(item)

        staged = HorizontalSequiturSCC()
        staged.compress_streams(staged.decompose(stream))

        for dim in DIMENSIONS:
            assert (
                staged.grammars[dim].to_productions()
                == streaming.grammars[dim].to_productions()
            )
