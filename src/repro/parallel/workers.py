"""Top-level worker functions for the process-pool fan-outs.

Everything here must be picklable by reference (module-level, no
closures): the executor ships ``(function, task)`` payloads through the
pool's task pipe.  Each worker is a pure function of its task tuple so
parallel output is deterministic and mergeable.

The module is marked ``# repro: workers`` so REPROLINT holds every
function here to the fork-safety rules (RL121-RL125): no captured
locks, files, or sockets; no module-global mutation; no leaked trace
activations.
"""

# repro: workers

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.compression.lmad import LMADCompressor, LMADProfileEntry

#: task: (dimension name, stream values, compressor factory)
DimensionTask = Tuple[str, List[int], type]

#: task: (budget, overflow_cap, [(key, triples), ...]) -- one shard of
#: LEAP substreams
LeapShardTask = Tuple[
    int,
    "int | None",
    List[Tuple[Tuple[int, int], List[Tuple[int, int, int]]]],
]


def compress_dimension(task: DimensionTask):
    """WHOMP worker: compress one horizontal dimension stream.

    Returns ``(name, compressor)``; the compressor object (e.g. a
    :class:`~repro.compression.sequitur.SequiturGrammar`) rides back to
    the parent via pickle, so it must round-trip exactly.
    """
    name, values, compressor_factory = task
    compressor = compressor_factory()
    feed = compressor.feed
    for value in values:
        feed(value)
    return name, compressor


def compress_leap_shard(
    task: LeapShardTask,
) -> List[Tuple[Tuple[int, int], LMADProfileEntry]]:
    """LEAP worker: LMAD-compress one shard of (instruction, group)
    substreams, returning closed profile entries keyed as given."""
    budget, overflow_cap, items = task
    out: List[Tuple[Tuple[int, int], LMADProfileEntry]] = []
    for key, triples in items:
        compressor = LMADCompressor(
            dims=3, budget=budget, overflow_cap=overflow_cap
        )
        compressor.feed_all(triples)
        out.append((key, compressor.finish()))
    return out


def shard_round_robin(items: List, shards: int) -> List[List]:
    """Deal ``items`` into ``shards`` lists round-robin.

    Round-robin (rather than contiguous slicing) balances LEAP shards:
    hot instructions cluster by id, so contiguous slices would hand one
    worker all the heavy substreams.
    """
    shards = max(1, shards)
    dealt: List[List] = [[] for __ in range(shards)]
    for index, item in enumerate(items):
        dealt[index % shards].append(item)
    return [shard for shard in dealt if shard]


def profile_workload_documents(task):
    """Store-ingest worker: trace one workload and serialize its
    profiles.

    Task: ``(name, scale, seed, profiler)`` or ``(name, scale, seed,
    profiler, fmt)`` with ``profiler`` one of ``whomp`` / ``leap`` /
    ``both`` and ``fmt`` a :data:`repro.core.profile_io.SERIALIZATIONS`
    name (default ``"json"``).  Returns ``(name, [(kind, payload),
    ...], meta)`` where each ``payload`` is the serialized profile
    document bytes (see :func:`repro.core.profile_io.dumps_bytes`)
    ready for ``ProfileStore.ingest_bytes`` in the parent, and ``meta``
    carries the run configuration for the manifest.  Documents cross
    the pool serialized rather than as profile objects: they are
    smaller, and the parent needs the exact bytes anyway for content
    addressing.

    When an ambient :class:`~repro.obs.context.TraceContext` is active
    (the executor re-activates the submitter's, see
    :func:`repro.parallel.executor._run_chunk`), the workload runs
    under a traced :class:`~repro.telemetry.spans.Telemetry` and
    ``meta["span"]`` carries the worker's span tree -- stamped with the
    shared trace id -- back to the parent for ``absorb_plain``.
    """
    import time

    from repro.core.profile_io import dumps_bytes
    from repro.obs.context import current
    from repro.profilers.leap import LeapProfiler
    from repro.profilers.whomp import WhompProfiler
    from repro.telemetry import NULL_TELEMETRY, Telemetry
    from repro.workloads.registry import create

    name, scale, seed, profiler = task[:4]
    fmt = task[4] if len(task) > 4 else "json"
    context = current()
    telemetry = NULL_TELEMETRY
    if context is not None:
        telemetry = Telemetry()
        telemetry.trace_id = context.trace_id
    start = time.perf_counter()
    with telemetry.span(f"worker:{name}") as span:
        with telemetry.span("trace-collection") as stage:
            trace = create(name, scale=scale, seed=seed).trace()
            stage.add_items(trace.access_count, "accesses")
        documents = []
        if profiler in ("whomp", "both"):
            with telemetry.span("whomp"):
                documents.append(
                    ("whomp", dumps_bytes(WhompProfiler().profile(trace), fmt))
                )
        if profiler in ("leap", "both"):
            with telemetry.span("leap"):
                documents.append(
                    ("leap", dumps_bytes(LeapProfiler().profile(trace), fmt))
                )
    meta = {
        "scale": scale,
        "seed": seed,
        "accesses": trace.access_count,
        "profiling_seconds": time.perf_counter() - start,
    }
    if context is not None:
        meta["span"] = span.to_plain()
    return name, documents, meta


def run_experiment(task):
    """Experiment-runner worker: run one whole experiment in-process.

    Task: ``(name, scale, seed, measure_speed, with_telemetry,
    fault_spec, ledger_dir)`` where ``fault_spec`` is an
    ``--inject-faults`` clause string (or ``None``) applied to this
    worker's own context, and ``ledger_dir`` the shared at-most-once
    ledger for kill faults.

    Returns ``(name, status, results, elapsed_seconds, span_data,
    error)``: ``status`` is ``"ok"``, ``"degraded"`` (faults actually
    landed in the data) or ``"failed"`` (the experiment raised --
    contained here, as data, so one failed experiment cannot void a
    sweep); ``error`` is the failure text or ``None``; ``span_data`` is
    the worker's span tree as plain data (see
    :meth:`repro.telemetry.spans.Span.to_plain`) or ``None``.
    """
    import time
    import traceback

    from repro.experiments.context import SuiteContext
    from repro.experiments.runner import EXPERIMENTS
    from repro.telemetry import NULL_TELEMETRY, Telemetry

    name, scale, seed, measure_speed, with_telemetry, fault_spec, ledger_dir = task
    injector = None
    if fault_spec:
        from repro.resilience import FaultInjector, parse_fault_spec

        injector = FaultInjector(parse_fault_spec(fault_spec), ledger_dir)
    telemetry = Telemetry() if with_telemetry else NULL_TELEMETRY
    if with_telemetry:
        from repro.obs.context import current

        ambient = current()
        if ambient is not None:
            telemetry.trace_id = ambient.trace_id
    context = SuiteContext(
        scale=scale,
        seed=seed,
        telemetry=telemetry if with_telemetry else None,
        fault_injector=injector,
    )
    run, __ = EXPERIMENTS[name]
    results = None
    error = None
    start = time.perf_counter()
    with telemetry.span(name) as span:
        try:
            if name == "table1":
                results = run(context, measure_speed=measure_speed)
            else:
                results = run(context)
            status = "degraded" if context.fault_activity() else "ok"
        except Exception as exc:  # noqa: BLE001 - contain, report
            status = "failed"
            error = f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"
    elapsed = time.perf_counter() - start
    span_data = span.to_plain() if with_telemetry else None
    return name, status, results, elapsed, span_data, error
