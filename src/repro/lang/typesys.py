"""Type system and struct layout for the mini-IR.

Resolves syntactic :class:`~repro.lang.ast.TypeExpr` into concrete types
with sizes and alignments, and computes C-style struct layouts (fields
at aligned offsets, struct size rounded to its alignment).  The layout
is what ties the language to the paper: field offsets here are the
*offset* dimension of the object-relative tuple.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.lang.ast import Program, StructDecl, TypeExpr
from repro.lang.lexer import LangError
from repro.runtime.memory import align_up

#: word size: ints and pointers are both 8 bytes (an LP64 machine)
WORD = 8


class TypeError_(LangError):
    """Raised on type resolution or layout errors (underscore avoids
    shadowing the Python built-in)."""


@dataclass(frozen=True)
class Type:
    """A resolved type."""

    def size(self) -> int:
        raise NotImplementedError

    def alignment(self) -> int:
        raise NotImplementedError


@dataclass(frozen=True)
class IntType(Type):
    def size(self) -> int:
        return WORD

    def alignment(self) -> int:
        return WORD

    def __str__(self) -> str:
        return "int"


@dataclass(frozen=True)
class PointerType(Type):
    pointee: Type

    def size(self) -> int:
        return WORD

    def alignment(self) -> int:
        return WORD

    def __str__(self) -> str:
        return f"{self.pointee}*"


@dataclass(frozen=True)
class ArrayType(Type):
    element: Type
    length: int

    def size(self) -> int:
        return self.element.size() * self.length

    def alignment(self) -> int:
        return self.element.alignment()

    def __str__(self) -> str:
        return f"{self.element}[{self.length}]"


@dataclass(frozen=True)
class StructField:
    name: str
    type: Type
    offset: int


@dataclass(frozen=True)
class StructType(Type):
    name: str
    fields: Tuple[StructField, ...]
    total_size: int
    align: int

    def size(self) -> int:
        return self.total_size

    def alignment(self) -> int:
        return self.align

    def field(self, name: str) -> StructField:
        for field in self.fields:
            if field.name == name:
                return field
        raise TypeError_(f"struct {self.name} has no field {name!r}")

    def __str__(self) -> str:
        return self.name


INT = IntType()


class TypeTable:
    """Resolved struct types for one program."""

    def __init__(self, program: Program) -> None:
        self._structs: Dict[str, StructType] = {}
        self._declarations = {s.name: s for s in program.structs}
        self._resolving: set = set()
        for declaration in program.structs:
            self._resolve_struct(declaration)

    # -- public -----------------------------------------------------------

    def struct(self, name: str) -> StructType:
        try:
            return self._structs[name]
        except KeyError:
            raise TypeError_(f"unknown struct {name!r}") from None

    def resolve(self, expr: TypeExpr) -> Type:
        """Resolve a syntactic type to a concrete :class:`Type`."""
        if expr.name == "int":
            base: Type = INT
        else:
            base = self.struct(expr.name)
        for __ in range(expr.pointer_depth):
            base = PointerType(base)
        if expr.array_length is not None:
            if expr.array_length <= 0:
                raise TypeError_(f"array length must be positive: {expr}")
            base = ArrayType(base, expr.array_length)
        return base

    # -- layout ------------------------------------------------------------

    def _resolve_struct(self, declaration: StructDecl) -> StructType:
        if declaration.name in self._structs:
            return self._structs[declaration.name]
        if declaration.name in self._resolving:
            raise TypeError_(
                f"recursive struct {declaration.name!r} by value "
                "(use a pointer)",
                declaration.line,
            )
        self._resolving.add(declaration.name)
        fields = []
        offset = 0
        align = 1
        for field_declaration in declaration.fields:
            field_type = self._resolve_field_type(field_declaration.type_expr)
            offset = align_up(offset, field_type.alignment())
            fields.append(StructField(field_declaration.name, field_type, offset))
            offset += field_type.size()
            align = max(align, field_type.alignment())
        names = [f.name for f in fields]
        if len(set(names)) != len(names):
            raise TypeError_(
                f"duplicate field in struct {declaration.name}", declaration.line
            )
        struct = StructType(
            declaration.name,
            tuple(fields),
            align_up(offset, align) if fields else align,
            align,
        )
        self._resolving.discard(declaration.name)
        self._structs[declaration.name] = struct
        return struct

    def _resolve_field_type(self, expr: TypeExpr) -> Type:
        """Resolve a field's type; by-value struct fields require the
        struct to be resolvable first (pointers break cycles)."""
        if expr.name != "int" and expr.pointer_depth == 0:
            if expr.name not in self._declarations:
                raise TypeError_(f"unknown struct {expr.name!r}")
            base: Type = self._resolve_struct(self._declarations[expr.name])
        elif expr.name != "int":
            # Pointer to a struct: layout does not need the pointee
            # resolved yet, but the name must exist.
            if expr.name not in self._declarations:
                raise TypeError_(f"unknown struct {expr.name!r}")
            base = self._lazy_struct(expr.name)
            for __ in range(expr.pointer_depth):
                base = PointerType(base)
            if expr.array_length is not None:
                base = ArrayType(base, expr.array_length)
            return base
        else:
            base = INT
        for __ in range(expr.pointer_depth):
            base = PointerType(base)
        if expr.array_length is not None:
            if expr.array_length <= 0:
                raise TypeError_(f"array length must be positive: {expr}")
            base = ArrayType(base, expr.array_length)
        return base

    def _lazy_struct(self, name: str) -> StructType:
        """Struct type usable behind a pointer before full resolution."""
        if name in self._structs:
            return self._structs[name]
        if name in self._resolving:
            # Self-referential pointer (linked list): resolve after the
            # full pass; return a placeholder resolved later via lookup
            # in the interpreter (which always goes through .struct()).
            return StructType(name, (), 0, 1)
        return self._resolve_struct(self._declarations[name])
