"""The structured event log: a bounded ring plus an optional JSONL sink.

Every notable moment of a run -- a pipeline stage closing, a pool chunk
being retried, a fault landing, a tuple being quarantined, a daemon
request completing -- becomes one flat, schema-versioned JSON record::

    {"v": 1, "ts": 1723108721.4, "kind": "stage",
     "trace": "<32 hex>", "span": "<16 hex>",
     "path": "whomp/compression", "seconds": 0.0183, ...}

``v`` is :data:`EVENT_SCHEMA_VERSION`; readers skip records from a
*newer* schema rather than misread them (the manifest idiom).  ``kind``
names the record family; everything else is kind-specific but flat, so
the log greps and tails cleanly.

Two retention tiers:

* an in-memory **ring** (``collections.deque`` with ``maxlen``) that
  always exists -- the daemon's ``/tracez`` endpoint and ``repro-obs
  tail`` read it -- and evicts oldest-first;
* an optional **file sink**: the full record stream as JSON Lines,
  rewritten atomically through
  :func:`repro.resilience.atomic_write_text` every ``flush_every``
  records and on :meth:`close`, so a crash leaves the previous
  consistent snapshot, never a torn line.  (:func:`read_events` still
  skips unparseable lines defensively, for logs written by other
  tools.)

The log is thread-safe: daemon handler threads and the main thread
share one instance behind a lock.
"""

from __future__ import annotations

import collections
import json
import threading
import time
from typing import Callable, Dict, Iterable, List, Optional

from repro.core.fsutil import atomic_write_text

#: bumped when the record envelope changes shape; readers skip newer
EVENT_SCHEMA_VERSION = 1

#: declared field schema per event kind, checked statically by
#: REPROLINT (RL143/RL144): every literal ``emit("<kind>", ...)`` call
#: site must name a declared kind and pass only declared fields, with
#: every ``required`` field present.  ``trace``/``span`` are envelope
#: fields and always legal; ``"open": True`` kinds (fault records,
#: whose payload mirrors the injected fault) tolerate extra fields.
#: Kept as a pure literal so the analyzer can read it without
#: importing this module.
EVENT_SCHEMAS = {
    "stage": {
        "required": ["path", "seconds"],
        "optional": ["items", "unit"],
    },
    "trace": {"required": ["spans"], "optional": ["meta"]},
    "request": {
        "required": ["endpoint", "method", "status", "seconds"],
        "optional": [],
    },
    "ingest": {
        "required": ["workload", "ok", "bytes"],
        "optional": ["streamed"],
    },
    "stream_ingest": {
        "required": [
            "workload",
            "documents",
            "torn",
            "ingested",
            "rejected",
            "complete",
            "capture_completeness",
        ],
        "optional": ["error"],
    },
    "quarantine": {"required": ["reason", "total"], "optional": []},
    "server_shutdown": {
        "required": ["drained", "in_flight", "deadline_seconds"],
        "optional": [],
    },
    "shard_restart": {
        "required": ["shard", "restarts", "backoff_seconds"],
        "optional": ["exit_code"],
    },
    "read_repair": {
        "required": ["digest", "shard", "repaired"],
        "optional": ["error", "workload"],
    },
    "shard_drain": {
        "required": ["shard", "copied"],
        "optional": ["error"],
    },
    "fault": {"required": ["fault"], "optional": [], "open": True},
    "timeout": {
        "required": ["label", "chunk", "attempt", "timeout_seconds"],
        "optional": [],
    },
    "worker-crash": {
        "required": ["label", "chunk", "attempt"],
        "optional": [],
    },
    "retry": {"required": ["label", "chunk", "attempt"], "optional": []},
    "fallback": {"required": ["label", "chunk", "attempts"], "optional": []},
}

#: default ring capacity (records; oldest evicted first)
DEFAULT_CAPACITY = 4096

#: default records between atomic file-sink flushes
DEFAULT_FLUSH_EVERY = 64


class EventLog:
    """Append-only structured event stream with bounded memory.

    >>> log = EventLog(capacity=2)
    >>> log.emit("stage", path="whomp", seconds=0.5)
    >>> log.emit("stage", path="leap", seconds=0.25)
    >>> log.emit("request", endpoint="ingest", status=201)
    >>> [record["kind"] for record in log.tail()]
    ['stage', 'request']
    >>> log.emitted
    3
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        path: Optional[str] = None,
        flush_every: int = DEFAULT_FLUSH_EVERY,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if capacity < 1:
            raise ValueError("event log capacity must be >= 1")
        self.capacity = capacity
        self.path = path
        self.flush_every = max(1, flush_every)
        self._clock = clock
        self._ring: "collections.deque[Dict[str, object]]" = collections.deque(
            maxlen=capacity
        )
        self._lock = threading.Lock()
        # serializes sink writes WITHOUT blocking emitters: the state
        # lock is only held long enough to snapshot the lines, never
        # across the disk write (ordering: _sink_lock before _lock)
        self._sink_lock = threading.Lock()
        self._file_lines: List[str] = []
        self._unflushed = 0
        self.emitted = 0

    # -- writing -------------------------------------------------------

    def emit(
        self,
        kind: str,
        trace: Optional[str] = None,
        span: Optional[str] = None,
        **fields: object,
    ) -> Dict[str, object]:
        """Record one event; returns the record that was stored."""
        record: Dict[str, object] = {
            "v": EVENT_SCHEMA_VERSION,
            "ts": self._clock(),
            "kind": kind,
        }
        if trace is not None:
            record["trace"] = trace
        if span is not None:
            record["span"] = span
        record.update(fields)
        flush_now = False
        with self._lock:
            self._ring.append(record)
            self.emitted += 1
            if self.path is not None:
                self._file_lines.append(json.dumps(record, sort_keys=True))
                self._unflushed += 1
                flush_now = self._unflushed >= self.flush_every
        if flush_now:
            # outside the state lock: a slow disk must not stall other
            # emitters (they keep appending; flush() snapshots whatever
            # has accumulated by the time it runs)
            self.flush()
        return record

    def flush(self) -> None:
        """Atomically persist everything emitted so far to the sink.

        The state lock is held only to snapshot the pending lines; the
        disk write happens under the dedicated sink lock, so concurrent
        flushers serialize on the file while emitters stay unblocked.
        The snapshot-then-write order means the writer holding the sink
        lock always writes the newest snapshot it took, and a crash
        leaves the previous consistent file.
        """
        with self._sink_lock:
            with self._lock:
                if self.path is None or not self._unflushed:
                    return
                text = "".join(
                    line + "\n" for line in self._file_lines
                )
                self._unflushed = 0
            atomic_write_text(self.path, text)

    def close(self) -> None:
        """Final flush; the log stays usable (close is just a flush)."""
        self.flush()

    # -- reading -------------------------------------------------------

    def tail(self, count: Optional[int] = None) -> List[Dict[str, object]]:
        """The most recent ``count`` records (all, by default), oldest
        first -- copies, safe to mutate."""
        with self._lock:
            records = list(self._ring)
        if count is not None:
            records = records[-max(0, count):] if count else []
        return [dict(record) for record in records]

    def records_for_trace(self, trace_id: str) -> List[Dict[str, object]]:
        """Ring records carrying the given trace id, oldest first."""
        with self._lock:
            return [
                dict(record)
                for record in self._ring
                if record.get("trace") == trace_id
            ]

    def trace_ids(self) -> List[str]:
        """Distinct trace ids present in the ring, in first-seen order."""
        seen: Dict[str, None] = {}
        with self._lock:
            for record in self._ring:
                trace = record.get("trace")
                if isinstance(trace, str) and trace not in seen:
                    seen[trace] = None
        return list(seen)

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def __repr__(self) -> str:
        return (
            f"EventLog({len(self)} ringed / {self.emitted} emitted, "
            f"capacity={self.capacity}, sink={self.path!r})"
        )


def read_events(path: str) -> List[Dict[str, object]]:
    """Load a JSONL event log from disk, defensively.

    Torn, foreign, or newer-schema lines are skipped (counted against
    nobody): a log written by a crashed process or a future version
    yields every record this version can still trust.
    """
    try:
        with open(path) as handle:
            text = handle.read()
    except OSError:
        return []
    records: List[Dict[str, object]] = []
    for line in text.splitlines():
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if not isinstance(record, dict):
            continue
        version = record.get("v")
        if not isinstance(version, int) or version > EVENT_SCHEMA_VERSION:
            continue
        if not isinstance(record.get("kind"), str):
            continue
        records.append(record)
    return records


def filter_events(
    records: Iterable[Dict[str, object]],
    kind: Optional[str] = None,
    trace: Optional[str] = None,
) -> List[Dict[str, object]]:
    """Records matching every given criterion."""
    out = []
    for record in records:
        if kind is not None and record.get("kind") != kind:
            continue
        if trace is not None and record.get("trace") != trace:
            continue
        out.append(record)
    return out
