"""The ``repro-obs`` CLI: tail, trace, top, flame, and slo check."""

import json

import pytest

from repro.obs import EventLog, TraceContext, finish_tracing, start_tracing
from repro.obs.cli import main
from repro.telemetry import Telemetry

TRACE_A = "a" * 32
TRACE_B = "b" * 32


@pytest.fixture()
def event_log(tmp_path):
    """A JSONL log with two traces, one carrying a span tree."""
    path = str(tmp_path / "events.jsonl")
    log = EventLog(path=path)
    log.emit("request", trace=TRACE_A, endpoint="ingest", seconds=0.010)
    log.emit("request", trace=TRACE_A, endpoint="ingest", seconds=0.020)
    log.emit("stage", trace=TRACE_A, path="whomp", seconds=0.5, items=100)
    log.emit("stage", trace=TRACE_A, path="whomp/compression", seconds=0.2)
    log.emit("request", trace=TRACE_B, endpoint="diff", seconds=0.001)
    log.emit(
        "trace",
        trace=TRACE_A,
        spans=[
            {
                "name": "whomp", "seconds": 0.5, "calls": 1, "items": 100,
                "unit": "accesses", "start_ts": 10.0, "end_ts": 10.5,
                "children": [
                    {"name": "compression", "seconds": 0.2, "calls": 1,
                     "items": 0, "start_ts": 10.1, "end_ts": 10.3,
                     "children": []},
                ],
            }
        ],
    )
    log.flush()
    return path


def slo_file(tmp_path, max_seconds):
    path = tmp_path / "slo.json"
    path.write_text(
        json.dumps(
            {
                "version": 1,
                "slos": [
                    {"name": "ingest-p99", "kind": "latency",
                     "event": "request", "match": {"endpoint": "ingest"},
                     "quantile": 0.99, "max_seconds": max_seconds}
                ],
            }
        )
    )
    return str(path)


class TestTail:
    def test_prints_summaries_and_count(self, event_log, capsys):
        assert main(["tail", "--events", event_log]) == 0
        out = capsys.readouterr().out
        assert "6 event record(s)" in out
        assert "request" in out and "stage" in out

    def test_filters_by_kind_and_trace(self, event_log, capsys):
        assert main(
            ["tail", "--events", event_log, "--kind", "request",
             "--trace", TRACE_A, "--json"]
        ) == 0
        records = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
        ]
        assert len(records) == 2
        assert all(r["kind"] == "request" for r in records)

    def test_count_keeps_the_tail(self, event_log, capsys):
        assert main(
            ["tail", "--events", event_log, "--count", "1", "--json"]
        ) == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["kind"] == "trace"

    def test_missing_file_is_empty_not_an_error(self, tmp_path, capsys):
        assert main(
            ["tail", "--events", str(tmp_path / "absent.jsonl")]
        ) == 0
        assert "0 event record(s)" in capsys.readouterr().out


class TestTrace:
    def test_list_shows_both_traces(self, event_log, capsys):
        assert main(["trace", "list", "--events", event_log]) == 0
        out = capsys.readouterr().out
        assert TRACE_A in out and TRACE_B in out

    def test_show_renders_the_span_tree(self, event_log, capsys):
        assert main(["trace", "show", TRACE_A, "--events", event_log]) == 0
        out = capsys.readouterr().out
        assert f"trace {TRACE_A}" in out
        assert "whomp" in out and "compression" in out
        assert "accesses" in out

    def test_show_accepts_a_unique_prefix(self, event_log, capsys):
        assert main(["trace", "show", "aaaa", "--events", event_log]) == 0
        assert f"trace {TRACE_A}" in capsys.readouterr().out

    def test_show_rejects_unknown_id(self, event_log, capsys):
        assert main(["trace", "show", "f" * 32, "--events", event_log]) == 2
        assert "no unique trace" in capsys.readouterr().err

    def test_show_requires_a_source(self, capsys):
        assert main(["trace", "show", TRACE_A]) == 2
        assert "--events" in capsys.readouterr().err

    def test_show_renders_a_real_run(self, tmp_path, capsys):
        # A document produced by the actual tracing helpers, not a
        # hand-built fixture.
        telemetry = Telemetry()
        path = str(tmp_path / "run.jsonl")
        context, events = start_tracing(telemetry, trace_out=path)
        with telemetry.span("whomp"):
            with telemetry.span("compression"):
                pass
        finish_tracing(telemetry, context, events)
        assert main(["trace", "show", context.trace_id, "--events", path]) == 0
        out = capsys.readouterr().out
        assert "whomp" in out and "compression" in out


class TestTop:
    def test_aggregates_and_ranks(self, event_log, capsys):
        assert main(["top", "--events", event_log]) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if "whomp" in line]
        # hottest first: whomp (0.5s) above whomp/compression (0.2s)
        assert lines[0].endswith("whomp")
        assert lines[1].endswith("whomp/compression")
        assert "100" in lines[0]  # items flow through

    def test_limit(self, event_log, capsys):
        assert main(["top", "--events", event_log, "--limit", "1"]) == 0
        out = capsys.readouterr().out
        assert "whomp/compression" not in out


class TestFlame:
    def test_writes_folded_stacks(self, event_log, tmp_path, capsys):
        out_path = str(tmp_path / "stacks.folded")
        assert main(
            ["flame", "--events", event_log, "-o", out_path]
        ) == 0
        lines = open(out_path).read().splitlines()
        # self time: whomp = 0.5 - 0.2 = 0.3s, compression = 0.2s
        assert "whomp 300000" in lines
        assert "whomp;compression 200000" in lines

    def test_stdout_when_no_output_path(self, event_log, capsys):
        assert main(["flame", "--events", event_log]) == 0
        assert "whomp;compression 200000" in capsys.readouterr().out


class TestSloCheck:
    def test_exit_zero_when_met(self, event_log, tmp_path, capsys):
        assert main(
            ["slo", "check", "--slo", slo_file(tmp_path, 1.0),
             "--events", event_log]
        ) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "0 breach(es)" in out

    def test_exit_one_on_breach(self, event_log, tmp_path, capsys):
        assert main(
            ["slo", "check", "--slo", slo_file(tmp_path, 1e-6),
             "--events", event_log]
        ) == 1
        assert "BREACH" in capsys.readouterr().out

    def test_json_output(self, event_log, tmp_path, capsys):
        assert main(
            ["slo", "check", "--slo", slo_file(tmp_path, 1.0),
             "--events", event_log, "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["results"][0]["ok"] is True

    def test_exit_two_on_bad_slo_file(self, event_log, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        assert main(
            ["slo", "check", "--slo", str(bad), "--events", event_log]
        ) == 2
        assert "not valid JSON" in capsys.readouterr().err
