"""The process-pool executor behind every ``--jobs N`` flag.

A thin, predictable wrapper over :mod:`multiprocessing`:

* **Serial fallback.**  ``jobs <= 1``, a platform without the ``fork``
  start method, or a task list shorter than two items all run inline in
  the calling process -- same results, no pool, no pickling.  (``fork``
  is required because the profilers ship closed-over grammar classes
  and large streams to the workers; ``spawn`` would re-import the world
  per worker and still require every argument to cross a pipe.)
* **Worker bootstrap.**  Workers ignore ``SIGINT`` so a Ctrl-C lands
  only in the parent, which terminates the pool and re-raises
  :class:`KeyboardInterrupt` cleanly instead of leaking children.
* **Chunked submission.**  Tasks are submitted in contiguous chunks
  (``chunksize`` heuristic below) to amortize IPC per task.
* **Crash containment.**  A worker that raises reports the traceback
  text back to the parent, which raises :class:`WorkerCrashError`
  carrying it plus the chunk index and how many of the chunk's items
  completed; a worker that *dies* (segfault, OOM-kill, an injected
  ``os._exit``) surfaces as a timed-out chunk instead of a hung join.
* **Retry / timeout / backoff.**  Each chunk is an independently
  awaited submission with an optional ``timeout`` deadline.
  Infrastructure failures -- a lost worker, a deadline miss, broken
  pool machinery -- are retried with exponential backoff up to
  ``retries`` times, and after the cap the chunk runs inline in the
  parent (the *serial fallback*), so a sick pool degrades instead of
  failing the run.  All of it is surfaced as telemetry counters:
  ``resilience.retries``, ``resilience.timeouts``,
  ``resilience.fallbacks``.  Exceptions raised *by the task function*
  are deterministic and are never retried.

Results are always returned in task order, so parallel runs are
deterministic whenever the worker function is.  With ``timeout=None``
and no faults the added machinery is dormant: one ``apply_async`` per
chunk and an unbounded ``get``, the same traffic the plain ``pool.map``
produced.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import multiprocessing.pool
import signal
import time
import traceback
from typing import Any, Callable, List, Optional, Sequence

from repro.obs.context import TraceContext, activate, current, current_header
from repro.telemetry.spans import Telemetry, coalesce

#: default retry cap per chunk (attempts = retries + 1)
DEFAULT_RETRIES = 2

#: default base backoff seconds between chunk retries (doubles per retry)
DEFAULT_BACKOFF = 0.05

#: deadline imposed when a fault plan kills/stalls workers but names no
#: timeout -- a killed worker's chunk would otherwise hang forever
FAULTED_DEFAULT_TIMEOUT = 30.0


class WorkerCrashError(RuntimeError):
    """A pool worker raised or died.

    Carries the failure's context across the pool boundary: the worker
    traceback text, the chunk the task belonged to, and how many items
    of that chunk had already completed when the failure hit.
    """

    def __init__(
        self,
        message: str,
        worker_traceback: str = "",
        chunk_index: Optional[int] = None,
        items_processed: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.worker_traceback = worker_traceback
        self.chunk_index = chunk_index
        self.items_processed = items_processed

    def __reduce__(self):
        # RuntimeError's default pickling would drop every keyword
        # attribute; the context must survive nested pool boundaries
        # (an experiment worker re-raising a profiler worker's crash).
        return (
            type(self),
            (
                self.args[0] if self.args else "",
                self.worker_traceback,
                self.chunk_index,
                self.items_processed,
            ),
        )


class TaskOutcome:
    """One task's fate under :meth:`ParallelExecutor.map_outcomes`.

    ``value`` is the task's result (``None`` on failure), ``error`` the
    contained :class:`WorkerCrashError` if the task function raised,
    ``attempts`` how many submissions its chunk needed, and
    ``fallback`` whether its chunk ended up running inline in the
    parent after the pool gave up.
    """

    __slots__ = ("value", "error", "attempts", "fallback")

    def __init__(
        self,
        value: Any = None,
        error: Optional[WorkerCrashError] = None,
        attempts: int = 1,
        fallback: bool = False,
    ) -> None:
        self.value = value
        self.error = error
        self.attempts = attempts
        self.fallback = fallback

    @property
    def ok(self) -> bool:
        return self.error is None

    def __repr__(self) -> str:
        state = "ok" if self.ok else f"error={self.error}"
        return (
            f"TaskOutcome({state}, attempts={self.attempts}, "
            f"fallback={self.fallback})"
        )


def fork_available() -> bool:
    """Whether this platform supports the ``fork`` start method."""
    return "fork" in multiprocessing.get_all_start_methods()


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` and negatives mean
    "use all CPUs"; positive values pass through; platforms without
    ``fork`` always resolve to 1 (the serial fallback)."""
    if not fork_available():
        return 1
    if jobs is None or jobs <= 0:
        return multiprocessing.cpu_count()
    return jobs


def _bootstrap_worker() -> None:
    """Pool initializer: leave interrupt handling to the parent."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)


def _run_chunk(payload):
    """Run one contiguous chunk of tasks inside a worker.

    Applies the fault injector's kill/stall schedule (pool workers
    only: the inline fallback path never self-injects), and traps
    per-task exceptions as data so one bad task does not void its
    chunk-mates' results.  Returns a list of
    ``(True, value) | (False, (type name, message, traceback text))``
    entries, one per task, in order.

    The payload's ``trace_header`` (the submitting process's ambient
    :class:`~repro.obs.context.TraceContext`, serialized) is
    re-activated here as a *child* context scoped to the chunk, so any
    telemetry the task functions produce -- worker span trees, event
    records, outbound HTTP -- carries the parent's trace id.
    """
    function, start_index, tasks, injector, trace_header = payload
    parent_context = TraceContext.from_header(trace_header)
    entries = []
    with contextlib.ExitStack() as scope:
        if parent_context is not None:
            scope.enter_context(activate(parent_context.child()))
        for offset, task in enumerate(tasks):
            index = start_index + offset
            if injector is not None:
                stall = injector.stall_seconds(index)
                if stall > 0.0:
                    time.sleep(stall)
                if injector.should_kill(index):
                    import os

                    os._exit(13)
            try:
                entries.append((True, function(task)))
            except BaseException as exc:  # noqa: BLE001 - report, don't unwind
                entries.append(
                    (
                        False,
                        (type(exc).__name__, str(exc), traceback.format_exc()),
                    )
                )
    return entries


class ParallelExecutor:
    """Map a picklable function over tasks with up to ``jobs`` workers.

    >>> executor = ParallelExecutor(jobs=1)
    >>> executor.map(abs, [-2, 3, -4])
    [2, 3, 4]
    """

    def __init__(
        self,
        jobs: Optional[int] = 1,
        telemetry: Optional[Telemetry] = None,
        retries: int = DEFAULT_RETRIES,
        timeout: Optional[float] = None,
        backoff: float = DEFAULT_BACKOFF,
        fault_injector=None,
    ) -> None:
        self.jobs = resolve_jobs(jobs if jobs is not None else 1)
        self.telemetry = coalesce(telemetry)
        self.fault_injector = fault_injector
        if fault_injector is not None:
            plan = fault_injector.plan
            if plan.retries is not None:
                retries = plan.retries
            if plan.timeout is not None:
                timeout = plan.timeout
            elif timeout is None and plan.any_process_faults():
                timeout = FAULTED_DEFAULT_TIMEOUT
            if plan.backoff is not None:
                backoff = plan.backoff
        self.retries = max(0, retries)
        self.timeout = timeout
        self.backoff = max(0.0, backoff)

    def effective_jobs(self, task_count: int) -> int:
        """Workers actually used for ``task_count`` tasks."""
        return max(1, min(self.jobs, task_count))

    @staticmethod
    def _chunksize(task_count: int, workers: int) -> int:
        """Contiguous tasks per submission: aim for ~4 chunks per worker
        so stragglers rebalance without paying IPC per task."""
        return max(1, task_count // (workers * 4))

    def map(
        self,
        function: Callable[[Any], Any],
        tasks: Sequence[Any],
        label: str = "parallel-map",
    ) -> List[Any]:
        """Apply ``function`` to every task; results in task order.

        Falls back to an inline serial loop when only one worker would
        be used (single job, single task, or no ``fork``).  The first
        task-raised exception surfaces as :class:`WorkerCrashError`
        (with context) on the pool path, or propagates raw on the
        inline path -- matching where the code actually ran.
        """
        tasks = list(tasks)
        workers = self.effective_jobs(len(tasks)) if fork_available() else 1
        if workers <= 1:
            return [function(task) for task in tasks]
        outcomes = self._pool_outcomes(function, tasks, workers, label, None)
        for outcome in outcomes:
            if outcome.error is not None:
                raise outcome.error
        return [outcome.value for outcome in outcomes]

    def map_outcomes(
        self,
        function: Callable[[Any], Any],
        tasks: Sequence[Any],
        label: str = "parallel-map",
        progress: Optional[Callable[[int, TaskOutcome], None]] = None,
    ) -> List[TaskOutcome]:
        """Like :meth:`map`, but contains failures instead of raising.

        Each task yields a :class:`TaskOutcome`; a task function that
        raises produces an outcome carrying the contextualized
        :class:`WorkerCrashError` while its neighbours keep their
        results.  ``progress`` (if given) is called in the parent as
        ``progress(task_index, outcome)``, in task order, as outcomes
        arrive -- the hook the experiments runner uses to checkpoint
        each result the moment it exists.  An exception raised by
        ``progress`` aborts the run (the pool is terminated) and
        propagates.
        """
        tasks = list(tasks)
        workers = self.effective_jobs(len(tasks)) if fork_available() else 1
        if workers <= 1:
            return self._serial_outcomes(function, tasks, label, progress)
        return self._pool_outcomes(function, tasks, workers, label, progress)

    # -- inline path ---------------------------------------------------

    def _serial_outcomes(
        self,
        function: Callable[[Any], Any],
        tasks: List[Any],
        label: str,
        progress: Optional[Callable[[int, TaskOutcome], None]],
    ) -> List[TaskOutcome]:
        outcomes: List[TaskOutcome] = []
        with self.telemetry.span(label) as span:
            for index, task in enumerate(tasks):
                try:
                    outcome = TaskOutcome(value=function(task))
                except KeyboardInterrupt:
                    raise
                except BaseException as exc:  # noqa: BLE001 - contain
                    outcome = TaskOutcome(
                        error=WorkerCrashError(
                            f"{label}: task {index} raised "
                            f"{type(exc).__name__}: {exc}",
                            worker_traceback=traceback.format_exc(),
                            chunk_index=index,
                            items_processed=0,
                        )
                    )
                outcomes.append(outcome)
                if progress is not None:
                    progress(index, outcome)
            span.add_items(len(tasks), "tasks")
        return outcomes

    # -- pool path -----------------------------------------------------

    def _pool_outcomes(
        self,
        function: Callable[[Any], Any],
        tasks: List[Any],
        workers: int,
        label: str,
        progress: Optional[Callable[[int, TaskOutcome], None]],
    ) -> List[TaskOutcome]:
        context = multiprocessing.get_context("fork")
        telemetry = self.telemetry
        telemetry.counter(
            "parallel.pools_total", "process pools started"
        ).inc()
        telemetry.gauge("parallel.jobs", "workers in the last pool").set(workers)
        chunksize = self._chunksize(len(tasks), workers)
        chunks = [
            (start, tasks[start : start + chunksize])
            for start in range(0, len(tasks), chunksize)
        ]
        pool = context.Pool(processes=workers, initializer=_bootstrap_worker)
        outcomes: List[TaskOutcome] = []
        try:
            with telemetry.span(label) as span:
                handles = [
                    self._submit(pool, function, start, chunk_tasks)
                    for start, chunk_tasks in chunks
                ]
                for chunk_index, (start, chunk_tasks) in enumerate(chunks):
                    entries, attempts, fallback = self._collect_chunk(
                        pool,
                        handles,
                        chunk_index,
                        function,
                        start,
                        chunk_tasks,
                        label,
                    )
                    chunk_outcomes = self._entries_to_outcomes(
                        entries, chunk_index, start, attempts, fallback, label
                    )
                    for offset, outcome in enumerate(chunk_outcomes):
                        outcomes.append(outcome)
                        if progress is not None:
                            try:
                                progress(start + offset, outcome)
                            except BaseException:
                                pool.terminate()
                                raise
                span.add_items(len(tasks), "tasks")
            telemetry.counter(
                "parallel.tasks_total", "tasks executed in pools"
            ).inc(len(tasks))
            return outcomes
        except KeyboardInterrupt:
            pool.terminate()
            raise
        finally:
            pool.close()
            pool.terminate()
            pool.join()

    def _submit(self, pool, function, start, chunk_tasks):
        # The ambient trace context (if any) rides along as its header
        # form -- fork shares memory but re-capturing at submit time
        # keeps resubmissions of the same chunk under the same trace.
        payload = (
            function,
            start,
            chunk_tasks,
            self.fault_injector,
            current_header(),
        )
        return pool.apply_async(_run_chunk, (payload,))

    def _emit_event(self, kind: str, **fields) -> None:
        """Emit a structured resilience event when a sink is attached."""
        events = self.telemetry.events
        if events is None:
            return
        context = current()
        events.emit(
            kind,
            trace=context.trace_id if context is not None else None,
            span=context.span_id if context is not None else None,
            **fields,
        )

    def _collect_chunk(
        self,
        pool,
        handles,
        chunk_index: int,
        function,
        start: int,
        chunk_tasks: List[Any],
        label: str,
    ):
        """Await one chunk, retrying infrastructure failures.

        Returns ``(entries, attempts, fallback)``.  Task-raised
        exceptions arrive *inside* ``entries`` (the worker reports them
        as data) and are deterministic, so they are never retried; what
        is retried is the chunk failing to report at all -- a deadline
        miss (``resilience.timeouts``) or broken pool machinery such as
        a worker dying mid-task.  After ``retries`` resubmissions the
        chunk runs inline in the parent (``resilience.fallbacks``),
        without fault injection: the fallback exists to rescue work,
        not to re-break it.
        """
        telemetry = self.telemetry
        attempt = 1
        while True:
            try:
                entries = handles[chunk_index].get(self.timeout)
                return entries, attempt, False
            except KeyboardInterrupt:
                raise
            except multiprocessing.TimeoutError:
                telemetry.counter(
                    "resilience.timeouts",
                    "pool chunks that missed their deadline",
                ).inc()
                self._emit_event(
                    "timeout",
                    label=label,
                    chunk=chunk_index,
                    attempt=attempt,
                    timeout_seconds=self.timeout,
                )
            except Exception:  # noqa: BLE001 - broken pool machinery
                self._emit_event(
                    "worker-crash",
                    label=label,
                    chunk=chunk_index,
                    attempt=attempt,
                )
            if attempt <= self.retries:
                telemetry.counter(
                    "resilience.retries", "pool chunk resubmissions"
                ).inc()
                self._emit_event(
                    "retry", label=label, chunk=chunk_index, attempt=attempt
                )
                time.sleep(self.backoff * (2 ** (attempt - 1)))
                attempt += 1
                try:
                    handles[chunk_index] = self._submit(
                        pool, function, start, chunk_tasks
                    )
                    continue
                except Exception:  # noqa: BLE001 - pool is gone; go inline
                    pass
            telemetry.counter(
                "resilience.fallbacks",
                "chunks rerun inline after the pool gave up",
            ).inc()
            self._emit_event(
                "fallback", label=label, chunk=chunk_index, attempts=attempt
            )
            entries = _run_chunk(
                (function, start, chunk_tasks, None, current_header())
            )
            return entries, attempt, True

    def _entries_to_outcomes(
        self,
        entries,
        chunk_index: int,
        start: int,
        attempts: int,
        fallback: bool,
        label: str,
    ) -> List[TaskOutcome]:
        telemetry = self.telemetry
        outcomes: List[TaskOutcome] = []
        completed = 0
        for offset, (ok, value) in enumerate(entries):
            if ok:
                completed += 1
                outcomes.append(
                    TaskOutcome(value=value, attempts=attempts, fallback=fallback)
                )
                continue
            name, message, worker_tb = value
            telemetry.counter(
                "parallel.worker_errors_total", "tasks that raised"
            ).inc()
            outcomes.append(
                TaskOutcome(
                    error=WorkerCrashError(
                        f"{label}: task {start + offset} raised {name}: {message}",
                        worker_traceback=worker_tb,
                        chunk_index=chunk_index,
                        items_processed=completed,
                    ),
                    attempts=attempts,
                    fallback=fallback,
                )
            )
        return outcomes
