"""TRACELINK: distributed tracing and structured logging for the pipeline.

PR 1 gave the repo a telemetry substrate (spans, counters, exporters);
this package gives that substrate a *frame of reference* that survives
process and network boundaries -- the same shift the paper makes for
addresses.  One traced invocation gets:

* a :class:`~repro.obs.context.TraceContext` (128-bit trace id)
  propagated into fork-pool workers by the executor and across HTTP by
  the ``X-Repro-Trace`` header;
* an :class:`~repro.obs.events.EventLog` -- a bounded ring plus an
  optional crash-safe JSONL sink -- with one schema-versioned record
  per pipeline stage, worker retry, fault injection, quarantine, and
  daemon request;
* p50/p95/p99 latency estimation
  (:class:`~repro.obs.quantiles.QuantileDigest`) behind the daemon's
  ``/metricsz`` and the SLO checker;
* a durable trace document (:mod:`repro.obs.trace`) stored in the
  profile store as its own document kind and rendered by the
  ``repro-obs`` CLI (``tail`` / ``trace show`` / ``top`` / ``flame`` /
  ``slo check``).

The CLIs wire it up through two helpers::

    context, events = start_tracing(telemetry, trace_out=path)
    ...  # run the pipeline
    document = finish_tracing(telemetry, context, events)
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.obs.context import (
    TRACE_HEADER,
    TraceContext,
    activate,
    current,
    current_header,
    set_current,
)
from repro.obs.events import (
    EVENT_SCHEMA_VERSION,
    EventLog,
    filter_events,
    read_events,
)
from repro.obs.quantiles import QuantileDigest, digest_of
from repro.obs.slo import (
    SloError,
    SloResult,
    SloRule,
    evaluate_slos,
    load_slo_file,
    render_slo_results,
)
from repro.obs.trace import (
    build_trace_document,
    folded_stacks,
    render_top,
    render_trace_tree,
    top_from_spans,
    top_spans,
)
from repro.telemetry.spans import Telemetry


def start_tracing(
    telemetry: Telemetry,
    trace_out: Optional[str] = None,
    context: Optional[TraceContext] = None,
    capacity: Optional[int] = None,
) -> Tuple[TraceContext, EventLog]:
    """Attach a trace context and event log to ``telemetry``.

    Installs the context as the process's ambient one (so fork-pool
    workers inherit it) and, when ``trace_out`` is given, mirrors every
    event into that JSONL file.  Returns ``(context, events)`` for
    :func:`finish_tracing`.
    """
    if context is None:
        context = TraceContext.new()
    events = (
        EventLog(capacity=capacity, path=trace_out)
        if capacity is not None
        else EventLog(path=trace_out)
    )
    telemetry.trace_id = context.trace_id
    telemetry.events = events
    set_current(context)
    return context, events


def finish_tracing(
    telemetry: Telemetry,
    context: TraceContext,
    events: EventLog,
    meta: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Close out one traced invocation.

    Builds the canonical trace document from the telemetry's top-level
    spans and the trace's event records, appends a final ``trace``
    record (carrying the span trees, so a JSONL log alone can render
    the tree), flushes the sink, and clears the ambient context.
    Returns the document, ready for the profile store.
    """
    document = build_trace_document(
        context.trace_id,
        [span.to_plain() for span in telemetry.spans()],
        events.tail(),
        meta=meta,
    )
    events.emit(
        "trace",
        trace=context.trace_id,
        span=context.span_id,
        spans=document["spans"],
        meta=document["meta"],
    )
    events.flush()
    if current() is context:
        set_current(None)
    return document


__all__ = [
    "EVENT_SCHEMA_VERSION",
    "EventLog",
    "QuantileDigest",
    "SloError",
    "SloResult",
    "SloRule",
    "TRACE_HEADER",
    "TraceContext",
    "activate",
    "build_trace_document",
    "current",
    "current_header",
    "digest_of",
    "evaluate_slos",
    "filter_events",
    "finish_tracing",
    "folded_stacks",
    "load_slo_file",
    "read_events",
    "render_slo_results",
    "render_top",
    "render_trace_tree",
    "set_current",
    "start_tracing",
    "top_from_spans",
    "top_spans",
]
