"""The simulated process substrate: address space, allocators, linker,
probes -- the producer of the traces the profilers consume."""

from repro.runtime.cache import (
    CacheConfig,
    CacheHierarchy,
    CacheStats,
    SetAssociativeCache,
    SimulationComparison,
    simulate,
)
from repro.runtime.allocator import (
    ALL_POLICIES,
    Allocator,
    AllocatorError,
    BumpAllocator,
    FreeListAllocator,
    SegregatedFitAllocator,
    make_allocator,
)
from repro.runtime.linker import Linker, StaticObject, Symbol, SymbolTable
from repro.runtime.memory import AddressSpace, MemoryError_, Segment, SegmentKind
from repro.runtime.probes import ProbeBus, TraceRecorder
from repro.runtime.process import Instruction, Process

__all__ = [
    "ALL_POLICIES", "AddressSpace", "Allocator", "AllocatorError",
    "CacheConfig", "CacheHierarchy", "CacheStats", "SetAssociativeCache",
    "SimulationComparison", "simulate",
    "BumpAllocator", "FreeListAllocator", "Instruction", "Linker",
    "MemoryError_", "ProbeBus", "Process", "Segment", "SegmentKind",
    "SegregatedFitAllocator", "StaticObject", "Symbol", "SymbolTable",
    "TraceRecorder", "make_allocator",
]
