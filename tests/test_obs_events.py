"""The structured event log: ring, file sink, and defensive reading."""

import json
import threading

import pytest

from repro.obs.events import (
    EVENT_SCHEMA_VERSION,
    EventLog,
    filter_events,
    read_events,
)


class TestRing:
    def test_records_carry_schema_and_timestamp(self):
        log = EventLog(clock=lambda: 123.5)
        record = log.emit("stage", path="whomp", seconds=0.25)
        assert record["v"] == EVENT_SCHEMA_VERSION
        assert record["ts"] == 123.5
        assert record["kind"] == "stage"
        assert record["path"] == "whomp"

    def test_trace_and_span_fields_are_optional(self):
        log = EventLog()
        bare = log.emit("request")
        tagged = log.emit("request", trace="ab" * 16, span="cd" * 8)
        assert "trace" not in bare and "span" not in bare
        assert tagged["trace"] == "ab" * 16

    def test_ring_evicts_oldest_first(self):
        log = EventLog(capacity=3)
        for index in range(7):
            log.emit("stage", index=index)
        assert [r["index"] for r in log.tail()] == [4, 5, 6]
        assert log.emitted == 7
        assert len(log) == 3

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)

    def test_tail_count_and_copies(self):
        log = EventLog()
        for index in range(5):
            log.emit("stage", index=index)
        last_two = log.tail(2)
        assert [r["index"] for r in last_two] == [3, 4]
        last_two[0]["index"] = 99  # copies: the ring is unaffected
        assert [r["index"] for r in log.tail(2)] == [3, 4]

    def test_records_for_trace_and_trace_ids(self):
        log = EventLog()
        log.emit("stage", trace="a" * 32)
        log.emit("request", trace="b" * 32)
        log.emit("stage", trace="a" * 32)
        log.emit("stage")
        assert len(log.records_for_trace("a" * 32)) == 2
        assert log.trace_ids() == ["a" * 32, "b" * 32]

    def test_concurrent_emitters_lose_nothing(self):
        log = EventLog(capacity=10_000)

        def hammer(tag):
            for __ in range(500):
                log.emit("stage", tag=tag)

        threads = [
            threading.Thread(target=hammer, args=(t,)) for t in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert log.emitted == 2000
        assert len(log) == 2000


class TestFileSink:
    def test_flushes_every_n_records(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = EventLog(path=path, flush_every=3)
        log.emit("stage", index=0)
        log.emit("stage", index=1)
        assert read_events(path) == []  # below the flush threshold
        log.emit("stage", index=2)
        assert [r["index"] for r in read_events(path)] == [0, 1, 2]

    def test_flush_persists_the_remainder(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = EventLog(path=path, flush_every=100)
        log.emit("stage")
        log.flush()
        assert len(read_events(path)) == 1
        log.close()  # close is just a final flush
        assert len(read_events(path)) == 1

    def test_file_outlives_the_ring(self, tmp_path):
        # The ring is bounded; the sink is the full stream.
        path = str(tmp_path / "events.jsonl")
        log = EventLog(capacity=2, path=path, flush_every=1)
        for index in range(6):
            log.emit("stage", index=index)
        assert len(log.tail()) == 2
        assert [r["index"] for r in read_events(path)] == list(range(6))


class TestReadEvents:
    def test_missing_file_reads_empty(self, tmp_path):
        assert read_events(str(tmp_path / "absent.jsonl")) == []

    def test_skips_torn_foreign_and_newer_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        good = json.dumps({"v": 1, "ts": 1.0, "kind": "stage"})
        newer = json.dumps(
            {"v": EVENT_SCHEMA_VERSION + 1, "ts": 2.0, "kind": "stage"}
        )
        path.write_text(
            "\n".join(
                [
                    good,
                    '{"v": 1, "ts": 3.0, "kind": "sta',  # torn mid-write
                    "[1, 2, 3]",  # valid JSON, wrong shape
                    '{"no": "kind", "v": 1}',
                    newer,
                    "",
                    good,
                ]
            )
        )
        records = read_events(str(path))
        assert len(records) == 2
        assert all(r["kind"] == "stage" for r in records)


class TestFilterEvents:
    def test_filters_by_kind_and_trace(self):
        records = [
            {"kind": "stage", "trace": "a"},
            {"kind": "request", "trace": "a"},
            {"kind": "stage", "trace": "b"},
        ]
        assert len(filter_events(records, kind="stage")) == 2
        assert len(filter_events(records, trace="a")) == 2
        assert filter_events(records, kind="stage", trace="b") == [
            {"kind": "stage", "trace": "b"}
        ]
