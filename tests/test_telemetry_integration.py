"""Integration tests: telemetry threaded through the real pipeline.

Three properties matter:

* instrumented runs populate the documented metric names and span tree;
* telemetry never changes profiler *outputs* (instrumented and null
  runs produce identical profiles);
* the :class:`~repro.telemetry.NullTelemetry` default keeps the hot
  paths within noise of a hand-rolled uninstrumented loop.
"""

import json
import re
import time

from repro.cli import main as cli_main
from repro.core.cdc import translate_trace
from repro.core.omc import ObjectManager
from repro.core.scc import HorizontalSequiturSCC
from repro.profilers.leap import LeapProfiler
from repro.profilers.whomp import WhompProfiler
from repro.telemetry import Telemetry
from repro.workloads.registry import create


class TestWhompTelemetry:
    def test_expected_metrics_and_spans(self, list_trace):
        telemetry = Telemetry()
        WhompProfiler(telemetry=telemetry).profile(list_trace)
        for name in (
            "cdc.translated_total",
            "cdc.wild_total",
            "whomp.grammar_rules",
            "whomp.profile_symbols",
            "whomp.profile_bytes",
            "whomp.groups",
        ):
            assert name in telemetry.registry, name
        for path in (
            "whomp",
            "whomp/translation",
            "whomp/decomposition",
            "whomp/compression",
        ):
            span = telemetry.find_span(path)
            assert span is not None and span.calls == 1, path
        translation = telemetry.find_span("whomp/translation")
        assert translation.items == list_trace.access_count

    def test_output_identical_to_null_run(self, list_trace):
        instrumented = WhompProfiler(telemetry=Telemetry()).profile(list_trace)
        plain = WhompProfiler().profile(list_trace)
        assert instrumented.reconstruct_accesses() == plain.reconstruct_accesses()
        assert instrumented.dimension_sizes() == plain.dimension_sizes()
        assert instrumented.group_labels == plain.group_labels


class TestLeapTelemetry:
    def test_expected_metrics_and_spans(self, list_trace):
        telemetry = Telemetry()
        profile = LeapProfiler(telemetry=telemetry).profile(list_trace)
        for name in (
            "leap.entries",
            "leap.lmads",
            "leap.lmads_per_entry",
            "leap.overflow_symbols_total",
            "leap.capture_rate",
            "leap.profile_bytes",
            "leap.budget",
        ):
            assert name in telemetry.registry, name
        assert telemetry.registry.value("leap.entries") == len(profile.entries)
        assert telemetry.registry.value("leap.capture_rate") == (
            profile.accesses_captured()
        )
        for path in ("leap/translation", "leap/decomposition", "leap/compression"):
            assert telemetry.find_span(path) is not None, path

    def test_output_identical_to_null_run(self, list_trace):
        instrumented = LeapProfiler(telemetry=Telemetry()).profile(list_trace)
        plain = LeapProfiler().profile(list_trace)
        assert instrumented.entries == plain.entries
        assert instrumented.exec_counts == plain.exec_counts
        assert instrumented.access_count == plain.access_count


class TestWorkloadTelemetry:
    def test_probe_and_trace_metrics(self):
        telemetry = Telemetry()
        trace = create("micro.list", scale=0.2).trace(telemetry=telemetry)
        registry = telemetry.registry
        assert registry.value("probe.accesses") == trace.access_count
        assert registry.value("probe.allocs") > 0
        assert registry.value("probe.frees") > 0
        assert registry.value("trace.allocated_bytes_total") > 0
        assert registry.value("trace.peak_live_bytes") > 0

    def test_telemetry_does_not_change_the_trace(self):
        plain = create("micro.list", scale=0.2).trace()
        instrumented = create("micro.list", scale=0.2).trace(telemetry=Telemetry())
        assert plain.access_count == instrumented.access_count
        assert plain.raw_address_stream() == instrumented.raw_address_stream()


class TestCliTelemetry:
    def test_report_covers_pipeline_stages(self, tmp_path, capsys):
        code = cli_main(
            ["run", "micro", "--scale", "0.2", "-o", str(tmp_path),
             "--telemetry", "report"]
        )
        assert code == 0
        output = capsys.readouterr().out
        for stage in (
            "trace-collection",
            "translation",
            "decomposition",
            "compression",
        ):
            assert stage in output, stage
        assert "accesses/s" in output

    def test_prom_output_parseable(self, tmp_path, capsys):
        code = cli_main(
            ["run", "micro", "--scale", "0.2", "-o", str(tmp_path),
             "--telemetry", "prom"]
        )
        assert code == 0
        output = capsys.readouterr().out
        prom_line = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (\+Inf|-?[0-9.e+-]+)$"
        )
        sample_lines = [
            line
            for line in output.splitlines()
            if line.startswith("repro_")
        ]
        assert sample_lines
        for line in sample_lines:
            assert prom_line.match(line), line

    def test_telemetry_out_writes_file(self, tmp_path, capsys):
        out_file = tmp_path / "telemetry.json"
        code = cli_main(
            ["run", "micro", "--scale", "0.2", "-o", str(tmp_path),
             "--telemetry", "json", "--telemetry-out", str(out_file)]
        )
        assert code == 0
        data = json.loads(out_file.read_text())
        assert "spans" in data and data["counters"]

    def test_disabling_telemetry_changes_no_profile_outputs(self, tmp_path):
        plain_dir = tmp_path / "plain"
        instrumented_dir = tmp_path / "telemetry"
        cli_main(["run", "micro", "--scale", "0.2", "-o", str(plain_dir)])
        cli_main(
            ["run", "micro", "--scale", "0.2", "-o", str(instrumented_dir),
             "--telemetry", "report"]
        )
        for name in ("micro.whomp.json", "micro.leap.json"):
            plain = (plain_dir / name).read_text()
            instrumented = (instrumented_dir / name).read_text()
            assert plain == instrumented, name

    def test_stats_json(self, capsys):
        code = cli_main(["stats", "micro", "--scale", "0.2", "--json"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["accesses"] > 0
        assert "reuse" in data and "load_fraction" in data


class TestNullTelemetryOverhead:
    """The disabled fast path must stay within noise of a bare loop."""

    @staticmethod
    def _bare_whomp(trace):
        omc = ObjectManager()
        scc = HorizontalSequiturSCC()
        count = 0
        for access in translate_trace(trace, omc):
            scc.consume(access)
            count += 1
        return count

    def test_null_telemetry_overhead_under_five_percent(self):
        trace = create("micro.array", scale=2.0).trace()
        profiler = WhompProfiler()  # defaults to NULL_TELEMETRY

        def best_of(function, rounds=5):
            timings = []
            for __ in range(rounds):
                start = time.perf_counter()
                function(trace)
                timings.append(time.perf_counter() - start)
            return min(timings)

        # Warm both paths once, then interleave measurements.  Timing
        # under a loaded test runner is noisy, so take the best pairing
        # across a few independent attempts before failing: the claim is
        # about the code path, not about one scheduler quantum.
        self._bare_whomp(trace)
        profiler.profile(trace)
        attempts = []
        for __ in range(3):
            bare = best_of(self._bare_whomp)
            instrumented_null = best_of(profiler.profile)
            attempts.append((instrumented_null, bare))
            # <5% on top of the bare loop, with a small absolute floor.
            if instrumented_null <= bare * 1.05 + 0.002:
                return
        assert False, (
            f"null-telemetry profile never came within 5% of the bare "
            f"loop across {len(attempts)} attempts: {attempts}"
        )
