"""Control-flow graph construction for mini-IR functions.

The mini-IR is fully structured (no goto), so the CFG is built by a
single walk over a function body.  Each :class:`BasicBlock` holds a
run of straight-line :class:`CFGNode` items; branching statements
(``if``, ``while``/``for``) contribute *condition* nodes whose
successors are the taken/not-taken blocks, and ``break`` / ``continue``
/ ``return`` terminate their block with an edge to the loop exit, the
loop step, or the function exit.

Two properties the linter relies on:

* statements that can never execute live in blocks unreachable from
  the entry block (``CFG.unreachable_nodes``);
* a function "falls off the end" exactly when the synthetic exit block
  has an incoming *fall-through* edge from a reachable block
  (``CFG.falls_through``) -- the ``fn`` missing ``return`` check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.lang import ast
from repro.lang.parser import _ForWrapper


@dataclass(frozen=True)
class CFGNode:
    """One straight-line item inside a basic block.

    ``element`` is either a simple statement (``VarDecl``, ``Assign``,
    ``ExprStmt``, ``Delete``, ``Return``) or, when ``is_condition`` is
    true, the controlling expression of an ``if`` or loop.
    """

    element: Union[ast.Stmt, ast.Expr]
    is_condition: bool = False

    @property
    def line(self) -> int:
        return self.element.line

    @property
    def column(self) -> int:
        return self.element.column


@dataclass
class BasicBlock:
    bid: int
    nodes: List[CFGNode] = field(default_factory=list)
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)

    def add_succ(self, other: "BasicBlock") -> None:
        if other.bid not in self.succs:
            self.succs.append(other.bid)
        if self.bid not in other.preds:
            other.preds.append(self.bid)


class CFG:
    """The graph for one function: blocks, entry, and a synthetic exit."""

    def __init__(self, function: ast.FunctionDecl) -> None:
        self.function = function
        self.blocks: List[BasicBlock] = []
        self.entry = self._new_block()
        self.exit = self._new_block()
        #: blocks whose flow reaches ``exit`` by falling off the end of
        #: the function body rather than through a ``return``
        self.fallthrough_blocks: Set[int] = set()

    # -- construction helpers (used by the builder) ---------------------

    def _new_block(self) -> BasicBlock:
        block = BasicBlock(len(self.blocks))
        self.blocks.append(block)
        return block

    def block(self, bid: int) -> BasicBlock:
        return self.blocks[bid]

    # -- queries ---------------------------------------------------------

    def reachable(self) -> Set[int]:
        """Block ids reachable from the entry block."""
        seen: Set[int] = set()
        stack = [self.entry.bid]
        while stack:
            bid = stack.pop()
            if bid in seen:
                continue
            seen.add(bid)
            stack.extend(self.blocks[bid].succs)
        return seen

    def unreachable_nodes(self) -> List[CFGNode]:
        """Nodes in blocks no execution can reach, in source order."""
        reachable = self.reachable()
        nodes = [
            node
            for block in self.blocks
            if block.bid not in reachable
            for node in block.nodes
        ]
        nodes.sort(key=lambda node: (node.line, node.column))
        return nodes

    def falls_through(self) -> bool:
        """True when some reachable path exits without a ``return``."""
        reachable = self.reachable()
        return any(bid in reachable for bid in self.fallthrough_blocks)

    def rpo(self) -> List[int]:
        """Reverse post-order over reachable blocks (good forward
        iteration order)."""
        seen: Set[int] = set()
        order: List[int] = []

        def visit(bid: int) -> None:
            stack: List[Tuple[int, int]] = [(bid, 0)]
            seen.add(bid)
            while stack:
                current, index = stack.pop()
                succs = self.blocks[current].succs
                if index < len(succs):
                    stack.append((current, index + 1))
                    nxt = succs[index]
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append((nxt, 0))
                else:
                    order.append(current)

        visit(self.entry.bid)
        order.reverse()
        return order


class _LoopFrame:
    """Targets for break/continue inside one loop."""

    def __init__(self, step_block: BasicBlock, after_block: BasicBlock) -> None:
        self.step_block = step_block  # continue target (runs the step)
        self.after_block = after_block  # break target


class CFGBuilder:
    """Build a :class:`CFG` per function.

    >>> from repro.lang.parser import parse
    >>> program = parse("fn main(): int { return 1; }")
    >>> cfg = CFGBuilder().build(program.function("main"))
    >>> cfg.falls_through()
    False
    """

    def build(self, function: ast.FunctionDecl) -> CFG:
        cfg = CFG(function)
        self._cfg = cfg
        self._loops: List[_LoopFrame] = []
        last = self._walk_body(function.body, cfg.entry)
        if last is not None:
            last.add_succ(cfg.exit)
            cfg.fallthrough_blocks.add(last.bid)
        return cfg

    def build_program(self, program: ast.Program) -> Dict[str, CFG]:
        return {fn.name: self.build(fn) for fn in program.functions}

    # -- walking ----------------------------------------------------------

    def _walk_body(
        self, body: Tuple[ast.Stmt, ...], current: Optional[BasicBlock]
    ) -> Optional[BasicBlock]:
        """Append ``body`` after ``current``; return the open block flow
        falls out of, or ``None`` when every path terminated."""
        for statement in body:
            if current is None:
                # Dead statements after return/break/continue: keep them
                # in a fresh unreachable block so lint can report them.
                current = self._cfg._new_block()
            current = self._walk_statement(statement, current)
        return current

    def _walk_statement(
        self, statement: ast.Stmt, current: BasicBlock
    ) -> Optional[BasicBlock]:
        if isinstance(statement, _ForWrapper):
            current = self._walk_statement(statement.init, current)
            if current is None:  # pragma: no cover - init never terminates
                return None
            return self._walk_statement(statement.loop, current)
        if isinstance(statement, ast.If):
            return self._walk_if(statement, current)
        if isinstance(statement, ast.While):
            return self._walk_while(statement, current)
        if isinstance(statement, ast.Return):
            current.nodes.append(CFGNode(statement))
            current.add_succ(self._cfg.exit)
            return None
        if isinstance(statement, ast.Break):
            current.nodes.append(CFGNode(statement))
            if self._loops:
                current.add_succ(self._loops[-1].after_block)
            return None
        if isinstance(statement, ast.Continue):
            current.nodes.append(CFGNode(statement))
            if self._loops:
                current.add_succ(self._loops[-1].step_block)
            return None
        current.nodes.append(CFGNode(statement))
        return current

    def _walk_if(self, statement: ast.If, current: BasicBlock) -> Optional[BasicBlock]:
        current.nodes.append(CFGNode(statement.condition, is_condition=True))
        after: Optional[BasicBlock] = None

        then_entry = self._cfg._new_block()
        current.add_succ(then_entry)
        then_exit = self._walk_body(statement.then_body, then_entry)

        if statement.else_body:
            else_entry = self._cfg._new_block()
            current.add_succ(else_entry)
            else_exit = self._walk_body(statement.else_body, else_entry)
        else:
            else_exit = current  # condition false falls straight through

        if then_exit is None and else_exit is None:
            return None
        after = self._cfg._new_block()
        if then_exit is not None:
            then_exit.add_succ(after)
        if else_exit is not None:
            else_exit.add_succ(after)
        return after

    def _walk_while(
        self, statement: ast.While, current: BasicBlock
    ) -> BasicBlock:
        cond_block = self._cfg._new_block()
        current.add_succ(cond_block)
        cond_block.nodes.append(CFGNode(statement.condition, is_condition=True))

        after = self._cfg._new_block()
        cond_block.add_succ(after)

        # The step statement gets its own block: it is the continue
        # target and runs even when the body ends with ``continue``.
        step_block = self._cfg._new_block()
        if statement.step is not None:
            step_block.nodes.append(CFGNode(statement.step))
        step_block.add_succ(cond_block)

        self._loops.append(_LoopFrame(step_block, after))
        body_entry = self._cfg._new_block()
        cond_block.add_succ(body_entry)
        body_exit = self._walk_body(statement.body, body_entry)
        self._loops.pop()
        if body_exit is not None:
            body_exit.add_succ(step_block)
        return after


def build_cfg(function: ast.FunctionDecl) -> CFG:
    """Convenience wrapper around :class:`CFGBuilder`."""
    return CFGBuilder().build(function)
