"""Tests for the WHOMP lossless profiler."""

import pytest

from repro.baselines.rasg import RasgProfiler
from repro.core.tuples import DIMENSIONS
from repro.profilers.whomp import WhompProfiler
from repro.workloads.micro import ArraySweep, HashProbe, LinkedListTraversal


def raw_stream(trace):
    return [(e.instruction_id, e.address) for e in trace.accesses()]


class TestLosslessness:
    def test_reconstructs_list_trace(self, list_trace):
        profile = WhompProfiler().profile(list_trace)
        assert profile.reconstruct_accesses() == raw_stream(list_trace)

    def test_reconstructs_matrix_trace(self, matrix_trace):
        profile = WhompProfiler().profile(matrix_trace)
        assert profile.reconstruct_accesses() == raw_stream(matrix_trace)

    def test_reconstructs_with_wild_accesses(self):
        """Reads of freed memory survive the round trip via the wild
        group (offset = raw address)."""
        from repro.core.events import AccessKind
        from repro.runtime.process import Process

        process = Process()
        ld = process.instruction("ld", AccessKind.LOAD)
        block = process.malloc("s", 64)
        process.load(ld, block)
        process.free(block)
        process.load(ld, block)
        process.finish()
        profile = WhompProfiler().profile(process.trace)
        assert profile.reconstruct_accesses() == raw_stream(process.trace)

    def test_expand_tuples_length(self, list_trace):
        profile = WhompProfiler().profile(list_trace)
        assert len(profile.expand_tuples()) == list_trace.access_count


class TestProfileStructure:
    def test_four_dimension_grammars(self, list_trace):
        profile = WhompProfiler().profile(list_trace)
        assert set(profile.grammars) == set(DIMENSIONS)
        sizes = profile.dimension_sizes()
        assert all(size > 0 for size in sizes.values())

    def test_auxiliary_tables_cover_objects(self, list_trace):
        profile = WhompProfiler().profile(list_trace)
        assert len(profile.base_addresses) == len(profile.lifetimes)
        # every (group, serial) in the lifetimes has a base address
        for group, serial, *__ in profile.lifetimes:
            assert (group, serial) in profile.base_addresses

    def test_group_labels_present(self, list_trace):
        profile = WhompProfiler().profile(list_trace)
        labels = set(profile.group_labels.values())
        assert "list.new_node" in labels

    def test_size_metrics_consistent(self, list_trace):
        profile = WhompProfiler().profile(list_trace)
        assert profile.size() == sum(profile.dimension_sizes().values())
        assert profile.size_bytes_varint() > 0
        assert profile.size_bytes() >= profile.size() * 4


class TestObjectRelativeInvariance:
    """The OMSG must be identical whatever the memory layout -- the
    paper's run-to-run stability claim."""

    @pytest.mark.parametrize(
        "knobs",
        [
            dict(allocator="best-fit"),
            dict(allocator="segregated"),
            dict(allocator="bump"),
            dict(probe_padding=1 << 16),
            dict(os_offset=1 << 20),
        ],
    )
    def test_omsg_invariant_under_layout(self, knobs):
        workload = LinkedListTraversal(nodes=25, sweeps=4)
        base = WhompProfiler().profile(workload.trace())
        other = WhompProfiler().profile(workload.trace(**knobs))
        for name in DIMENSIONS:
            assert (
                base.grammars[name].expand() == other.grammars[name].expand()
            ), f"{name} stream changed under {knobs}"

    def test_raw_stream_not_invariant(self):
        workload = LinkedListTraversal(nodes=25, sweeps=4)
        first = workload.trace().raw_address_stream()
        second = workload.trace(os_offset=1 << 20).raw_address_stream()
        assert first != second


class TestCompressionShape:
    def test_omsg_beats_rasg_on_cross_object_pattern(self):
        """Many same-site objects with identical internal access patterns:
        the structure OMSG exposes and raw addresses hide."""
        from repro.core.events import AccessKind
        from repro.runtime.process import Process

        process = Process()
        ld = process.instruction("scan", AccessKind.LOAD)
        for __ in range(40):
            block = process.malloc("site", 512)
            for offset in range(0, 512, 8):
                process.load(ld, block + offset)
        process.finish()
        whomp = WhompProfiler().profile(process.trace)
        rasg = RasgProfiler().profile(process.trace)
        assert whomp.size() < rasg.size()
        assert whomp.size_bytes_varint() < rasg.size_bytes_varint()

    def test_strided_sweep_compresses_offsets_dimension(self):
        trace = ArraySweep(elements=128, sweeps=4).trace()
        profile = WhompProfiler().profile(trace)
        sizes = profile.dimension_sizes()
        # repeated sweeps compress: far smaller than the access count
        assert sizes["offset"] < trace.access_count / 3
        assert sizes["group"] < 64

    def test_random_offsets_do_not_compress(self):
        trace = HashProbe(buckets=512, probes=1500).trace()
        profile = WhompProfiler().profile(trace)
        assert profile.dimension_sizes()["offset"] > 1000


class TestTypeRefinement:
    def test_refine_by_type_splits_groups(self):
        from repro.core.events import AccessKind
        from repro.runtime.process import Process

        def run(refine):
            process = Process()
            st = process.instruction("st", AccessKind.STORE)
            a = process.malloc("site", 32, type_name="node")
            b = process.malloc("site", 32, type_name="edge")
            process.store(st, a)
            process.store(st, b)
            process.finish()
            return WhompProfiler(refine_by_type=refine).profile(process.trace)

        assert len(run(False).group_labels) == 1
        assert len(run(True).group_labels) == 2
