"""Tests for the mini-IR CFG builder and dataflow framework."""

import pytest

from repro.lang import parse
from repro.lang.analysis import (
    Interval,
    Liveness,
    ReachingDefinitions,
    ValueAnalysis,
    build_cfg,
    solve,
)
from repro.lang.analysis.cfg import CFGBuilder
from repro.lang.analysis.dataflow import UNINIT


def cfg_of(source, name="main"):
    program = parse(source)
    return program, build_cfg(program.function(name))


class TestCFGShape:
    def test_straight_line_single_block(self):
        __, cfg = cfg_of("fn main(): int { var x: int = 1; return x; }")
        reachable = cfg.reachable()
        # entry and exit plus one body block, all connected
        assert cfg.entry.bid in reachable and cfg.exit.bid in reachable
        assert not cfg.unreachable_nodes()

    def test_if_produces_branch_and_join(self):
        __, cfg = cfg_of(
            """
            fn main(): int {
              var x: int = 0;
              if (x > 0) { x = 1; } else { x = 2; }
              return x;
            }
            """
        )
        branching = [b for b in cfg.blocks if len(b.succs) == 2]
        assert len(branching) == 1
        joining = [
            b for b in cfg.blocks
            if len(b.preds) == 2 and b.bid != cfg.exit.bid
        ]
        assert joining

    def test_while_forms_back_edge(self):
        __, cfg = cfg_of(
            """
            fn main(): int {
              var i: int = 0;
              while (i < 10) { i = i + 1; }
              return i;
            }
            """
        )
        ids = {b.bid for b in cfg.blocks}
        back_edges = [
            (b.bid, s)
            for b in cfg.blocks
            for s in b.succs
            if s in ids and s <= b.bid and b.bid != cfg.entry
        ]
        assert back_edges, "loop must produce a back edge"

    def test_code_after_return_is_unreachable(self):
        __, cfg = cfg_of(
            """
            fn main(): int {
              return 1;
              var x: int = 2;
            }
            """
        )
        dead = cfg.unreachable_nodes()
        assert dead
        assert any(node.line == 4 for node in dead)

    def test_falls_through_detection(self):
        __, with_return = cfg_of("fn main(): int { return 1; }")
        assert not with_return.falls_through()
        __, without = cfg_of(
            """
            fn main(): int {
              var x: int = 0;
              if (x > 0) { return 1; }
            }
            """
        )
        assert without.falls_through()

    def test_rpo_starts_at_entry(self):
        __, cfg = cfg_of(
            """
            fn main(): int {
              var i: int = 0;
              while (i < 3) { i = i + 1; }
              return i;
            }
            """
        )
        order = cfg.rpo()
        assert order[0] == cfg.entry.bid


class TestReachingDefinitions:
    def test_uninitialized_marker_reaches_use(self):
        program, cfg = cfg_of(
            """
            fn main(): int {
              var u: int;
              var v: int = 1;
              if (v > 0) { u = 2; }
              return u;
            }
            """
        )
        solution = solve(cfg, ReachingDefinitions(cfg.function))
        return_states = [
            before
            for b in cfg.blocks
            for node, before, __ in solution.node_states(b.bid)
            if type(node.element).__name__ == "Return"
        ]
        # On some path u is still the UNINIT marker, on another it is
        # the line-5 assignment: both definitions reach the return.
        final = return_states[-1]["u"]
        assert UNINIT in final and len(final) == 2

    def test_params_are_defined(self):
        program = parse("fn f(a: int): int { return a; } fn main(): int { return f(1); }")
        cfg = build_cfg(program.function("f"))
        solution = solve(cfg, ReachingDefinitions(cfg.function))
        for __, before, __ in solution.node_states(cfg.rpo()[1]):
            assert UNINIT not in before.get("a", frozenset())


class TestLiveness:
    def test_dead_store_not_live(self):
        __, cfg = cfg_of(
            """
            fn main(): int {
              var x: int = 1;
              x = 2;
              return x;
            }
            """
        )
        solution = solve(cfg, Liveness(cfg.function))
        # After the final store x is live (the return reads it); after
        # the first it is not: the initializer's value dies.
        nodes = [
            (node, before, after)
            for bid in [b.bid for b in cfg.blocks]
            for node, before, after in solution.node_states(bid)
        ]
        stores = [
            (node, after) for node, __, after in nodes
            if getattr(getattr(node.element, "target", None), "name", None) == "x"
        ]
        assert stores and any("x" in after for __, after in stores)


class TestValueAnalysis:
    def test_constant_propagates_through_branch_join(self):
        program, cfg = cfg_of(
            """
            fn main(): int {
              var a: int = 3;
              var b: int = 0;
              if (a > 1) { b = 5; } else { b = 9; }
              return b;
            }
            """
        )
        analysis = ValueAnalysis(cfg.function, program)
        solution = solve(cfg, analysis)
        # a stays the constant 3 everywhere
        for bid in [b.bid for b in cfg.blocks]:
            for __, before, __ in solution.node_states(bid):
                value = before.get("a")
                if isinstance(value, Interval) and value.is_const:
                    assert value.lo == 3

    def test_interval_hull_and_widening(self):
        a = Interval.const(1)
        b = Interval.const(10)
        hull = a.hull(b)
        assert (hull.lo, hull.hi) == (1, 10)
        widened = a.widened(hull)
        assert widened.hi is None  # upper bound blown to +inf
        assert widened.lo == 1

    def test_interval_arithmetic(self):
        assert Interval.const(4).add(Interval.const(5)).lo == 9
        assert Interval.const(4).neg().lo == -4
        product = Interval(2, 3).mul(Interval(-1, 1))
        assert (product.lo, product.hi) == (-3, 3)

    def test_loop_counter_does_not_diverge(self):
        program, cfg = cfg_of(
            """
            fn main(): int {
              var i: int = 0;
              while (i < 100) { i = i + 1; }
              return i;
            }
            """
        )
        # The solve must terminate (widening) and keep a finite lower
        # bound for i.
        solution = solve(cfg, ValueAnalysis(cfg.function, program))
        assert solution is not None
