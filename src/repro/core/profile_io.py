"""Profile serialization.

Profiles are the artifact a feedback-directed compiler consumes in a
later build, so they must survive a round trip to disk.  Two encodings
carry the same versioned documents: JSON (human-inspectable,
diff-friendly, the canonical store form) and the BINCAP binary format
(:mod:`repro.core.binformat`) -- framed, varint/delta-encoded, several
times smaller, and the fast path for streamed ingest.  The bytes-level
API (:func:`dumps_bytes` / :func:`loads_bytes` /
:func:`document_from_bytes`) routes on the binary magic, so every
consumer accepts either encoding transparently.

Supported payloads: :class:`~repro.profilers.whomp.WhompProfile`
(grammars stored as productions, re-expandable),
:class:`~repro.profilers.leap.LeapProfile` (LMAD records), and
:class:`~repro.baselines.dependence_lossless.DependenceProfile` (the
post-processed MDF table).

Robustness contract: **loading never trusts the file**.  Whatever a
truncated write, a flipped bit, or a hand-edited document does to the
bytes, a loader either returns a valid profile or raises
:class:`ProfileFormatError` -- never a ``KeyError``/``TypeError`` from
half-decoded structure, and never unbounded work from a malicious
document (a doubling grammar claiming a small ``access_count`` is cut
off at the claimed length; internal totals are cross-checked).  The
fuzz tests in ``tests/test_profile_io.py`` drive this with bit flips
and truncations at every offset.

:func:`save` / :func:`load` are the path-level API: atomic writes
(temp file + ``os.replace``) and format sniffing, so a crash mid-save
can never leave a truncated profile where a good one stood.
"""

from __future__ import annotations

import io
import json
import re
from typing import IO, Dict, List, Optional, Tuple, Union

from repro.baselines.dependence_lossless import DependenceProfile
from repro.compression.lmad import LMAD, LMADProfileEntry, OverflowSummary
from repro.compression.sequitur import Ref, SequiturGrammar
from repro.core import binformat
from repro.core.events import AccessKind
from repro.core.fsutil import atomic_write_bytes, atomic_write_text
from repro.core.tuples import DIMENSIONS
from repro.profilers.leap import LeapProfile
from repro.profilers.whomp import WhompProfile

FORMAT_VERSION = 1

#: serialization encodings the path/bytes-level API can produce
SERIALIZATIONS = ("json", "binary")


class ProfileFormatError(Exception):
    """Raised when a profile file cannot be decoded."""


#: exception classes that half-decoded JSON structure raises when the
#: decoders index into it; all converted to :class:`ProfileFormatError`
_DECODE_ERRORS = (KeyError, IndexError, TypeError, ValueError, AttributeError)


def _load_document(stream: IO[str]) -> Dict[str, object]:
    """Parse one JSON document, normalizing every parse-level failure
    (bad JSON, binary garbage, a non-object top level) to
    :class:`ProfileFormatError`."""
    try:
        document = json.load(stream)
    except ProfileFormatError:
        raise
    except (ValueError, RecursionError, OSError, UnicodeDecodeError) as exc:
        raise ProfileFormatError(f"unparseable profile: {exc}") from exc
    if not isinstance(document, dict):
        raise ProfileFormatError("profile document is not a JSON object")
    return document


def _require_version(document: Dict[str, object], fmt: str) -> None:
    if document.get("format") != fmt:
        raise ProfileFormatError(f"not a {fmt.upper()} profile")
    if document.get("version") != FORMAT_VERSION:
        raise ProfileFormatError(f"unsupported version {document.get('version')}")


def _count_field(document: Dict[str, object], key: str) -> int:
    value = document.get(key)
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise ProfileFormatError(f"bad {key}: {value!r}")
    return value


# -- grammar (de)serialization ------------------------------------------------


def _grammar_to_json(grammar: SequiturGrammar) -> Dict[str, object]:
    productions = {}
    for rule_id, rhs in grammar.to_productions().items():
        encoded: List[object] = []
        for symbol in rhs:
            if isinstance(symbol, Ref):
                encoded.append(["R", symbol.rule_id])
            else:
                encoded.append(["T", symbol])
        productions[str(rule_id)] = encoded
    return {"start": grammar.start.id, "productions": productions}


def _expand_productions(
    data: Dict[str, object], max_symbols: Optional[int] = None
) -> List[object]:
    """Expand serialized productions back into the terminal stream.

    Expansion is iterative (explicit frame stack): rule chains in a
    valid grammar can be arbitrarily deep, far past Python's recursion
    limit, and must still load.  A rule re-entered while one of its own
    expansions is in flight is a true cycle -- impossible in a grammar
    produced by Sequitur -- and raises :class:`ProfileFormatError`.

    ``max_symbols`` bounds the output length: a crafted document can
    describe exponentially many terminals in linear space (a doubling
    chain of rules), so a loader that knows the expected stream length
    passes it and the expansion aborts the moment the claim is
    exceeded, instead of filling memory first and failing later.
    """
    try:
        productions = data["productions"]
        start = str(data["start"])
        if start not in productions:
            raise ProfileFormatError(f"start rule {start!r} not in productions")
        out: List[object] = []
        # Each frame: [rule_id, rhs, next index].  ``active`` tracks the
        # rules currently on the stack for cycle detection.
        stack: List[List[object]] = [[start, productions[start], 0]]
        active = {start}
        while stack:
            frame = stack[-1]
            rule_id, rhs, index = frame
            if index >= len(rhs):
                stack.pop()
                active.discard(rule_id)
                continue
            frame[2] = index + 1
            tag, value = rhs[index]
            if tag == "T":
                out.append(value)
                if max_symbols is not None and len(out) > max_symbols:
                    raise ProfileFormatError(
                        f"grammar expands past the claimed {max_symbols} symbols"
                    )
            elif tag == "R":
                child = str(value)
                if child in active:
                    raise ProfileFormatError(
                        f"grammar cycle through rule {child!r}"
                    )
                child_rhs = productions.get(child)
                if child_rhs is None:
                    raise ProfileFormatError(f"undefined rule {child!r}")
                stack.append([child, child_rhs, 0])
                active.add(child)
            else:
                raise ProfileFormatError(f"bad symbol tag {tag!r}")
        return out
    except ProfileFormatError:
        raise
    except _DECODE_ERRORS as exc:
        raise ProfileFormatError(f"malformed grammar: {exc}") from exc


# -- WHOMP ----------------------------------------------------------------


def _whomp_document(profile: WhompProfile) -> Dict[str, object]:
    """The canonical document dict, shared by both serializers."""
    return {
        "format": "whomp",
        "version": FORMAT_VERSION,
        "access_count": profile.access_count,
        "capture_completeness": profile.capture_completeness,
        "quarantined": profile.quarantined,
        "grammars": {
            name: _grammar_to_json(grammar)
            for name, grammar in profile.grammars.items()
        },
        "base_addresses": [
            [group, serial, address]
            for (group, serial), address in sorted(profile.base_addresses.items())
        ],
        "lifetimes": [list(row) for row in profile.lifetimes],
        "group_labels": {str(k): v for k, v in profile.group_labels.items()},
    }


def save_whomp(profile: WhompProfile, stream: IO[str]) -> None:
    json.dump(_whomp_document(profile), stream)


def load_whomp_streams(stream: IO[str]) -> Dict[str, object]:
    """Load a WHOMP profile as expanded dimension streams plus the
    auxiliary tables.

    The Sequitur grammar objects themselves are not reconstructed (the
    grammar is a compression artifact); consumers want the streams.
    Returns a dict with ``streams``, ``base_addresses``, ``lifetimes``,
    ``group_labels``, ``access_count``, ``capture_completeness``,
    ``quarantined``.
    """
    return _decode_whomp(_load_document(stream))


def _decode_whomp(document: Dict[str, object]) -> Dict[str, object]:
    _require_version(document, "whomp")
    try:
        access_count = _count_field(document, "access_count")
        # bottom-up memoized expansion (the ingest hot path); pathological
        # grammar shapes are delegated back to the bounded iterative walker
        streams = {
            name: binformat.expand_productions_fast(
                grammar_data,
                max_symbols=access_count,
                fallback=_expand_productions,
            )
            for name, grammar_data in document["grammars"].items()
        }
        missing = [name for name in DIMENSIONS if name not in streams]
        if missing:
            raise ProfileFormatError(f"missing dimension streams: {missing}")
        for name, values in streams.items():
            if len(values) != access_count:
                raise ProfileFormatError(
                    f"{name} stream has {len(values)} symbols, "
                    f"expected {access_count}"
                )
        base_addresses = {
            (group, serial): address
            for group, serial, address in document["base_addresses"]
        }
        return {
            "streams": streams,
            "base_addresses": base_addresses,
            "lifetimes": [tuple(row) for row in document["lifetimes"]],
            "group_labels": {
                int(k): v for k, v in document["group_labels"].items()
            },
            "access_count": access_count,
            "capture_completeness": document.get("capture_completeness", 1.0),
            "quarantined": document.get("quarantined", 0),
        }
    except ProfileFormatError:
        raise
    except _DECODE_ERRORS as exc:
        raise ProfileFormatError(f"malformed WHOMP profile: {exc}") from exc


# -- LEAP --------------------------------------------------------------------


def _leap_document(profile: LeapProfile) -> Dict[str, object]:
    entries = []
    for (instruction, group), entry in sorted(profile.entries.items()):
        overflow = entry.overflow
        entries.append(
            {
                "instruction": instruction,
                "group": group,
                "total": entry.total_symbols,
                "summarized": entry.summarized,
                "lmads": [
                    [list(l.start), list(l.stride), l.count] for l in entry.lmads
                ],
                "overflow": {
                    "count": overflow.count,
                    "min": list(overflow.minimum) if overflow.minimum else None,
                    "max": list(overflow.maximum) if overflow.maximum else None,
                    "granularity": (
                        list(overflow.granularity) if overflow.granularity else None
                    ),
                },
            }
        )
    return {
        "format": "leap",
        "version": FORMAT_VERSION,
        "budget": profile.budget,
        "access_count": profile.access_count,
        "capture_completeness": profile.capture_completeness,
        "quarantined": profile.quarantined,
        "entries": entries,
        "kinds": {str(k): v.value for k, v in profile.kinds.items()},
        "exec_counts": {str(k): v for k, v in profile.exec_counts.items()},
        "group_labels": {str(k): v for k, v in profile.group_labels.items()},
        "lifetimes": [list(row) for row in profile.lifetimes],
    }


def save_leap(profile: LeapProfile, stream: IO[str]) -> None:
    json.dump(_leap_document(profile), stream)


def load_leap(stream: IO[str]) -> LeapProfile:
    return _decode_leap(_load_document(stream))


def _decode_leap(document: Dict[str, object]) -> LeapProfile:
    _require_version(document, "leap")
    try:
        entries: Dict[Tuple[int, int], LMADProfileEntry] = {}
        for record in document["entries"]:
            lmads = tuple(
                LMAD(tuple(start), tuple(stride), count)
                for start, stride, count in record["lmads"]
            )
            dims = lmads[0].dims if lmads else 3
            overflow = OverflowSummary(dims=dims)
            overflow.count = _count_field(record["overflow"], "count")
            if record["overflow"]["min"] is not None:
                overflow.minimum = tuple(record["overflow"]["min"])
                overflow.maximum = tuple(record["overflow"]["max"])
                overflow.granularity = tuple(record["overflow"]["granularity"])
            total = _count_field(record, "total")
            described = sum(l.count for l in lmads) + overflow.count
            if described != total:
                raise ProfileFormatError(
                    f"entry ({record['instruction']}, {record['group']}) "
                    f"describes {described} symbols but claims {total}"
                )
            entries[(record["instruction"], record["group"])] = LMADProfileEntry(
                lmads=lmads,
                overflow=overflow,
                total_symbols=total,
                summarized=bool(record.get("summarized", False)),
            )
        return LeapProfile(
            entries=entries,
            kinds={int(k): AccessKind(v) for k, v in document["kinds"].items()},
            exec_counts={int(k): v for k, v in document["exec_counts"].items()},
            group_labels={
                int(k): v for k, v in document["group_labels"].items()
            },
            access_count=_count_field(document, "access_count"),
            budget=document["budget"],
            lifetimes=[tuple(row) for row in document["lifetimes"]],
            capture_completeness=document.get("capture_completeness", 1.0),
            quarantined=document.get("quarantined", 0),
        )
    except ProfileFormatError:
        raise
    except _DECODE_ERRORS as exc:
        raise ProfileFormatError(f"malformed LEAP profile: {exc}") from exc


# -- dependence tables -------------------------------------------------------


def _dependence_document(profile: DependenceProfile) -> Dict[str, object]:
    return {
        "format": "dependence",
        "version": FORMAT_VERSION,
        "conflicts": [
            [store, load, count]
            for (store, load), count in sorted(profile.conflicts.items())
        ],
        "load_counts": {str(k): v for k, v in profile.load_counts.items()},
        "store_counts": {str(k): v for k, v in profile.store_counts.items()},
    }


def save_dependence(profile: DependenceProfile, stream: IO[str]) -> None:
    json.dump(_dependence_document(profile), stream)


def load_dependence(stream: IO[str]) -> DependenceProfile:
    return _decode_dependence(_load_document(stream))


def _decode_dependence(document: Dict[str, object]) -> DependenceProfile:
    if document.get("format") != "dependence":
        raise ProfileFormatError("not a dependence profile")
    try:
        return DependenceProfile(
            conflicts={
                (store, load): count
                for store, load, count in document["conflicts"]
            },
            load_counts={
                int(k): v for k, v in document["load_counts"].items()
            },
            store_counts={
                int(k): v for k, v in document["store_counts"].items()
            },
        )
    except ProfileFormatError:
        raise
    except _DECODE_ERRORS as exc:
        raise ProfileFormatError(f"malformed dependence profile: {exc}") from exc


# -- trace documents ----------------------------------------------------------

#: version of the TRACELINK trace document (see :mod:`repro.obs.trace`,
#: which builds them; decoding lives here so the store validates traces
#: exactly like profiles)
TRACE_FORMAT_VERSION = 1

_HEX_DIGITS = frozenset("0123456789abcdef")


def _decode_trace(document: Dict[str, object]) -> Dict[str, object]:
    """Validate a trace document; returns the document itself.

    Traces are consumed as plain data (the ``repro-obs`` renderers and
    the daemon's ``/tracez`` endpoint work straight off the dict), so
    decoding is validation: id well-formed, spans and events lists of
    objects, every span subtree sane.  Same contract as the profile
    decoders -- a valid document or :class:`ProfileFormatError`.
    """
    if document.get("format") != "trace":
        raise ProfileFormatError("not a trace document")
    version = document.get("version")
    if not isinstance(version, int) or not 1 <= version <= TRACE_FORMAT_VERSION:
        raise ProfileFormatError(f"unsupported trace version {version!r}")
    trace_id = document.get("trace_id")
    if (
        not isinstance(trace_id, str)
        or len(trace_id) != 32
        or not set(trace_id) <= _HEX_DIGITS
    ):
        raise ProfileFormatError(f"bad trace id {trace_id!r}")

    def check_span(span: object, depth: int = 0) -> None:
        if depth > 64:
            raise ProfileFormatError("span tree too deep")
        if not isinstance(span, dict) or not isinstance(span.get("name"), str):
            raise ProfileFormatError("malformed span node")
        for key in ("seconds", "start_ts", "end_ts"):
            value = span.get(key, 0.0)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ProfileFormatError(f"span {key} is not a number")
        children = span.get("children", [])
        if not isinstance(children, list):
            raise ProfileFormatError("span children is not a list")
        for child in children:
            check_span(child, depth + 1)

    try:
        spans = document["spans"]
        events = document["events"]
        if not isinstance(spans, list) or not isinstance(events, list):
            raise ProfileFormatError("trace spans/events must be lists")
        for span in spans:
            check_span(span)
        for event in events:
            if not isinstance(event, dict) or not isinstance(
                event.get("kind"), str
            ):
                raise ProfileFormatError("malformed event record")
    except ProfileFormatError:
        raise
    except _DECODE_ERRORS as exc:
        raise ProfileFormatError(f"malformed trace document: {exc}") from exc
    return document


def save_trace(document: Dict[str, object], stream: IO[str]) -> None:
    json.dump(_decode_trace(document), stream, sort_keys=True)


def load_trace(stream: IO[str]) -> Dict[str, object]:
    return _decode_trace(_load_document(stream))


# -- path-level API -----------------------------------------------------------

_DECODERS = {
    "whomp": _decode_whomp,
    "leap": _decode_leap,
    "dependence": _decode_dependence,
    "trace": _decode_trace,
}

#: format names the text-level API recognizes (sniffable documents)
FORMATS = tuple(sorted(_DECODERS))


def _document_for(profile: object) -> Dict[str, object]:
    """The canonical document dict for any supported profile object."""
    for cls, builder in (
        (WhompProfile, _whomp_document),
        (LeapProfile, _leap_document),
        (DependenceProfile, _dependence_document),
    ):
        if isinstance(profile, cls):
            return builder(profile)
    if isinstance(profile, dict) and profile.get("format") == "trace":
        return _decode_trace(profile)
    raise TypeError(f"unsupported profile type {type(profile).__name__}")


def dumps(profile: object) -> str:
    """Serialize any supported profile to its canonical document text.

    This is exactly the content :func:`save` writes to disk; the profile
    store keys blobs by the sha256 of this text, so two ingests of the
    same profile deduplicate to one blob.
    """
    if isinstance(profile, dict) and profile.get("format") == "trace":
        return json.dumps(_decode_trace(profile), sort_keys=True)
    return json.dumps(_document_for(profile))


def dumps_bytes(profile: object, fmt: str = "json") -> bytes:
    """Serialize a profile to bytes in the requested encoding.

    ``fmt`` is ``"json"`` (UTF-8 of :func:`dumps`) or ``"binary"``
    (the BINCAP format).  Trace documents are JSON-only; asking for a
    binary trace raises :class:`ProfileFormatError`.
    """
    if fmt == "json":
        return dumps(profile).encode("utf-8")
    if fmt != "binary":
        raise ValueError(f"unknown serialization {fmt!r} (want {SERIALIZATIONS})")
    try:
        return binformat.encode_document(_document_for(profile))
    except binformat.BinaryFormatError as exc:
        raise ProfileFormatError(str(exc)) from exc


def profile_from_document(document: Dict[str, object]) -> object:
    """Decode a JSON-shape document dict into its profile object,
    dispatching on the ``format`` field (the common tail of
    :func:`loads` and :func:`loads_bytes`)."""
    fmt = document.get("format")
    decoder = _DECODERS.get(fmt)
    if decoder is None:
        raise ProfileFormatError(f"unknown profile format {fmt!r}")
    return decoder(document)


def loads(text: str) -> object:
    """Decode a profile document from text, sniffing the format.

    The text-level twin of :func:`load`, with the same robustness
    contract: a valid profile or :class:`ProfileFormatError`, nothing in
    between.
    """
    return profile_from_document(_load_document(io.StringIO(text)))


def document_from_bytes(data: Union[bytes, bytearray]) -> Dict[str, object]:
    """Decode either encoding back to its JSON-shape document dict.

    Binary bytes (BINCAP magic) are frame-decoded and CRC-checked; any
    other bytes must be a UTF-8 JSON object.  The result is the common
    currency of the differ and the daemon's ``/get`` endpoint --
    downstream code never needs to know which encoding arrived.
    """
    data = bytes(data)
    try:
        if binformat.sniff_kind(data) is not None:
            return binformat.decode_document(data)
    except binformat.BinaryFormatError as exc:
        raise ProfileFormatError(str(exc)) from exc
    try:
        text = data.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProfileFormatError(
            f"profile bytes are neither binary nor UTF-8 JSON: {exc}"
        ) from exc
    return _load_document(io.StringIO(text))


def loads_bytes(data: Union[bytes, bytearray]) -> object:
    """Decode a profile from bytes in either encoding (magic-routed).

    Binary WHOMP documents take a fast path
    (:func:`repro.core.binformat.decode_whomp_streams`) that expands
    grammars straight off the wire encoding; it enforces the same
    checks and returns the same stream dict as the document route.
    """
    data = bytes(data)
    try:
        if binformat.sniff_kind(data) == "whomp":
            return binformat.decode_whomp_streams(data, DIMENSIONS)
    except binformat.BinaryFormatError as exc:
        raise ProfileFormatError(str(exc)) from exc
    return profile_from_document(document_from_bytes(data))


#: canonical documents serialize their ``format`` field first, so a
#: bounded prefix scan finds it without parsing the whole document
_SNIFF_PREFIX = 4096
_SNIFF_RE = re.compile(r'"format"\s*:\s*"([a-z]+)"')


def sniff_format(payload: Union[str, bytes, bytearray]) -> str:
    """The ``format`` field of a profile document (cheap validity gate).

    Cheap means cheap: binary documents are identified from the 8-byte
    magic plus the header frame, and JSON documents from a bounded scan
    of the first few KiB (canonical documents put ``format`` first), so
    sniffing a multi-megabyte document costs microseconds either way.
    Non-canonical JSON falls back to a full parse.  Raises
    :class:`ProfileFormatError` when the payload carries no recognized
    format name.  Note the gate sniffs, it does not validate -- feed
    the payload to :func:`loads` / :func:`loads_bytes` for that.
    """
    if isinstance(payload, (bytes, bytearray, memoryview)):
        data = bytes(payload)
        try:
            kind = binformat.sniff_kind(data)
        except binformat.BinaryFormatError as exc:
            raise ProfileFormatError(str(exc)) from exc
        if kind is not None:
            if kind not in _DECODERS:
                raise ProfileFormatError(f"unknown profile format {kind!r}")
            return kind
        try:
            text = data.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProfileFormatError(
                f"profile bytes are neither binary nor UTF-8 JSON: {exc}"
            ) from exc
    else:
        text = payload
    match = _SNIFF_RE.search(text[:_SNIFF_PREFIX])
    if match and match.group(1) in _DECODERS and text.lstrip()[:1] == "{":
        return match.group(1)
    document = _load_document(io.StringIO(text))
    fmt = document.get("format")
    if fmt not in _DECODERS:
        raise ProfileFormatError(f"unknown profile format {fmt!r}")
    return fmt


def save(profile: object, path: str, fmt: str = "json") -> None:
    """Serialize any supported profile to ``path`` atomically.

    The document is fully rendered in memory, written to a temp file in
    the target directory, fsynced, and renamed into place -- a crash at
    any instant leaves either the previous file or the complete new
    one, never a truncation.  ``fmt`` selects the encoding (see
    :data:`SERIALIZATIONS`).
    """
    if fmt == "json":
        atomic_write_text(path, dumps(profile))
    else:
        atomic_write_bytes(path, dumps_bytes(profile, fmt))


def load(path: str) -> object:
    """Load any supported profile file, sniffing the encoding + format.

    Returns what the format's loader returns: a stream dict for WHOMP
    (see :func:`load_whomp_streams`), a :class:`LeapProfile`, or a
    :class:`DependenceProfile`.  Raises :class:`ProfileFormatError` for
    anything unreadable or unrecognized (including an unreadable path).
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as exc:
        raise ProfileFormatError(f"cannot read {path!r}: {exc}") from exc
    return loads_bytes(data)
