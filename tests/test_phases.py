"""Tests for phase detection and phase-cognizant LEAP."""

import pytest

from repro.analysis.phases import (
    PhaseDetector,
    PhasedLeapProfiler,
    compare_with_flat,
)
from repro.core.events import AccessKind
from repro.core.tuples import ObjectRelativeAccess
from repro.runtime.process import Process


def access(instruction_id, time):
    return ObjectRelativeAccess(
        instruction_id, 0, 0, 0, time, 8, AccessKind.LOAD
    )


def two_phase_process(rounds=3, words=1024):
    """Alternates a strided scan+update and random probing; the probe
    phase shares the scan's load instruction, so the flat profiler's
    budget gets burned by the random phase.  The update store only runs
    in phase A, which is what makes the interval signatures differ."""
    process = Process()
    buffer = process.malloc("buf", words * 8)
    ld = process.instruction("scan", AccessKind.LOAD)
    st = process.instruction("update", AccessKind.STORE)
    state = 1
    for __ in range(rounds):
        for word in range(words):
            process.load(ld, buffer + word * 8)
            process.store(st, buffer + word * 8)
        for __ in range(words):
            state = (state * 1103515245 + 12345) % (1 << 31)
            process.load(ld, buffer + (state % words) * 8)
    process.finish()
    return process


class TestPhaseDetector:
    def test_uniform_stream_is_one_phase(self):
        detector = PhaseDetector(interval=100)
        for t in range(1000):
            detector.feed(access(t % 4, t))
        detector.flush()
        assert len(detector.phases) == 1
        assert len(detector.assignments) == 10

    def test_two_distinct_phases_detected(self):
        detector = PhaseDetector(interval=100)
        for t in range(500):
            detector.feed(access(0, t))
        for t in range(500, 1000):
            detector.feed(access(1, t))
        detector.flush()
        assert len(detector.phases) == 2
        assert detector.assignments == [0] * 5 + [1] * 5

    def test_recurring_phase_reuses_id(self):
        detector = PhaseDetector(interval=100)
        for block in range(4):
            instr = block % 2
            for t in range(100):
                detector.feed(access(instr, t))
        assert detector.assignments == [0, 1, 0, 1]

    def test_partial_interval_flushed(self):
        detector = PhaseDetector(interval=100)
        for t in range(150):
            detector.feed(access(0, t))
        assert len(detector.assignments) == 1
        detector.flush()
        assert len(detector.assignments) == 2
        assert detector.flush() is None  # nothing pending

    def test_threshold_controls_merging(self):
        def phases_with(threshold):
            detector = PhaseDetector(interval=100, threshold=threshold)
            for block in range(4):
                for t in range(100):
                    # signatures differ slightly between blocks
                    detector.feed(access(0 if t % 10 else block, t))
            return len(detector.phases)

        assert phases_with(2.0) == 1  # everything merges
        assert phases_with(0.01) >= 2  # tiny threshold splits

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            PhaseDetector(interval=0)


class TestPhasedLeap:
    def test_phased_capture_beats_flat_on_phase_change(self):
        process = two_phase_process()
        flat, phased = compare_with_flat(process.trace, interval=1024)
        assert phased > flat

    def test_profiles_partition_the_trace(self):
        process = two_phase_process(rounds=2)
        phased = PhasedLeapProfiler(interval=1024).profile(process.trace)
        total = sum(p.access_count for p in phased.profiles.values())
        assert total == process.trace.access_count

    def test_assignments_cover_whole_trace(self):
        process = two_phase_process(rounds=2)
        phased = PhasedLeapProfiler(interval=1024).profile(process.trace)
        assert len(phased.assignments) >= process.trace.access_count // 1024
        assert phased.phase_count() >= 2

    def test_size_accounts_all_phases(self):
        process = two_phase_process(rounds=2)
        phased = PhasedLeapProfiler(interval=1024).profile(process.trace)
        assert phased.size_bytes() == sum(
            p.size_bytes() for p in phased.profiles.values()
        )

    def test_empty_trace(self):
        from repro.core.events import Trace

        phased = PhasedLeapProfiler().profile(Trace())
        assert phased.phase_count() == 0
        assert phased.accesses_captured() == 1.0
