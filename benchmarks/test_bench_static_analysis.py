"""MIRCHECK bench: static analyzer wall-clock and static-vs-LEAP
agreement.

Times the full static pipeline (parse -> CFG/lint -> static LMAD
inference) on the largest bundled example, and asserts the oracle's
agreement-rate floor: every LMAD the static side predicts for a
proved-regular instruction must match the profiled one exactly.
"""

import os

from conftest import once

from repro.experiments import staticvs
from repro.lang import parse
from repro.lang.analysis import StaticLmadAnalyzer, lint_program

EXAMPLES = os.path.join(
    os.path.dirname(__file__), os.pardir, "examples", "programs"
)


def _largest_example() -> str:
    candidates = [
        os.path.join(EXAMPLES, name)
        for name in os.listdir(EXAMPLES)
        if name.endswith(".mir") and not name.startswith("defects_")
    ]
    return max(candidates, key=os.path.getsize)


def _analyze(source: str):
    program = parse(source)
    diagnostics = lint_program(program, source)
    result = StaticLmadAnalyzer(program).run()
    return diagnostics, result


def test_static_analyzer_wall_clock(benchmark):
    """Full static pipeline on the largest bundled example."""
    path = _largest_example()
    with open(path) as handle:
        source = handle.read()
    diagnostics, result = once(benchmark, _analyze, source)
    assert diagnostics == []
    assert result.instructions


def test_static_vs_leap_agreement_rate(benchmark):
    """The oracle sweep: every program clean, full agreement."""
    results = once(benchmark, staticvs.run)
    print()
    print(staticvs.render(results))
    assert results["programs"], "bundled examples must be present"
    for row in results["programs"]:
        assert row["lmad_agreement"] == 1.0, row
        assert row["exec_agreement"] == 1.0, row
        assert row["dependence_agreement"] == 1.0, row
        assert row["clean"], row
    # matrix.mir is fully analyzable: everything proved regular
    matrix = next(
        row for row in results["programs"] if row["program"] == "matrix.mir"
    )
    assert matrix["proved_regular"] == matrix["instructions"]
