"""Tests for evaluation metrics and report formatting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import (
    BUCKET_CENTERS,
    ErrorDistribution,
    compression_improvement,
    error_distribution,
    geometric_mean,
    summarize_distribution,
)
from repro.analysis.report import (
    format_histogram,
    format_key_values,
    format_table,
    percent,
    ratio,
)
from repro.baselines.dependence_lossless import DependenceProfile


class TestErrorDistribution:
    def test_zero_error_center_bucket(self):
        distribution = ErrorDistribution()
        distribution.add(0.0)
        assert distribution.exactly_correct() == 1.0
        assert distribution.counts[10] == 1

    def test_bucket_rounding(self):
        distribution = ErrorDistribution()
        distribution.add(0.04)  # rounds to center
        distribution.add(0.06)  # rounds to +10%
        assert distribution.counts[10] == 1
        assert distribution.counts[11] == 1

    def test_clamping(self):
        distribution = ErrorDistribution()
        distribution.add(-5.0)
        distribution.add(5.0)
        assert distribution.counts[0] == 1
        assert distribution.counts[-1] == 1

    def test_within(self):
        distribution = ErrorDistribution()
        for error in (0.0, 0.1, -0.1, 0.5, -1.0):
            distribution.add(error)
        assert distribution.within(0.10) == pytest.approx(3 / 5)
        assert distribution.within(0.50) == pytest.approx(4 / 5)

    def test_empty_distribution(self):
        distribution = ErrorDistribution()
        assert distribution.within() == 1.0
        assert distribution.exactly_correct() == 1.0
        assert sum(distribution.fractions()) == 0.0

    def test_fractions_sum_to_one(self):
        distribution = ErrorDistribution()
        for error in (0.0, 0.3, -0.7, 0.0):
            distribution.add(error)
        assert sum(distribution.fractions()) == pytest.approx(1.0)

    def test_average_weights_benchmarks_equally(self):
        heavy = ErrorDistribution()
        for __ in range(100):
            heavy.add(0.0)
        light = ErrorDistribution()
        light.add(-1.0)
        average = ErrorDistribution.average([heavy, light])
        # 50/50, not 100/101
        assert average.fractions()[10] == pytest.approx(0.5, abs=0.01)
        assert average.fractions()[0] == pytest.approx(0.5, abs=0.01)

    def test_average_skips_empty(self):
        empty = ErrorDistribution()
        full = ErrorDistribution()
        full.add(0.0)
        average = ErrorDistribution.average([empty, full])
        assert average.within(0.0) == pytest.approx(1.0)

    def test_average_of_nothing(self):
        average = ErrorDistribution.average([])
        assert average.total_pairs == 0

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.floats(-1, 1, allow_nan=False), max_size=50))
    def test_total_matches_adds(self, errors):
        distribution = ErrorDistribution()
        for error in errors:
            distribution.add(error)
        assert distribution.total_pairs == len(errors)
        assert sum(distribution.counts) == len(errors)


class TestErrorDistributionFromProfiles:
    def test_universe_is_union(self):
        truth = DependenceProfile(
            conflicts={(0, 1): 5}, load_counts={1: 10, 3: 10}, store_counts={0: 5}
        )
        estimated = DependenceProfile(
            conflicts={(2, 3): 10}, load_counts={1: 10, 3: 10}, store_counts={2: 5}
        )
        distribution = error_distribution(estimated, truth)
        assert distribution.total_pairs == 2
        # miss of (0,1): error -0.5; phantom (2,3): error +1.0
        assert distribution.counts[5] == 1
        assert distribution.counts[20] == 1


class TestScalarMetrics:
    def test_compression_improvement(self):
        assert compression_improvement(78, 100) == pytest.approx(0.22)
        assert compression_improvement(120, 100) == pytest.approx(-0.2)

    def test_compression_improvement_validation(self):
        with pytest.raises(ValueError):
            compression_improvement(10, 0)

    def test_geometric_mean(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])

    def test_summary(self):
        distribution = ErrorDistribution()
        distribution.add(0.0)
        summary = summarize_distribution(distribution)
        assert summary["pairs"] == 1.0
        assert summary["within_10pct"] == 1.0


class TestReportFormatting:
    def test_format_table(self):
        text = format_table(["a", "bb"], [[1, 22], [333, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "333" in text

    def test_format_table_empty(self):
        text = format_table(["col"], [])
        assert "col" in text

    def test_format_histogram_has_all_buckets(self):
        distribution = ErrorDistribution()
        distribution.add(0.0)
        text = format_histogram(distribution)
        assert len(text.splitlines()) == len(BUCKET_CENTERS) + 1

    def test_percent_and_ratio(self):
        assert percent(0.2215) == "22.1%"  # bankers-free float formatting
        assert percent(0.5, 0) == "50%"
        assert ratio(3539.4) == "3539x"
        assert ratio(11.5) == "11.5x"

    def test_key_values(self):
        text = format_key_values({"alpha": 1, "b": 2}, title="H")
        assert text.startswith("H")
        assert "alpha" in text
