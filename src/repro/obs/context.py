"""Trace context: the ids that stitch one run's telemetry together.

The paper's thesis is that the right frame of reference exposes
regularity; a distributed pipeline's frame of reference is the *trace*.
A :class:`TraceContext` names one logical operation -- a profiling run,
a batch ingest, a daemon request -- with a 128-bit trace id shared by
every participant and a 64-bit span id per participant.  The context
crosses process boundaries two ways:

* **fork pools** -- the executor captures the ambient context at chunk
  submission and re-activates a child of it inside the worker (see
  :mod:`repro.parallel.executor`), so worker span trees carry the same
  trace id as the parent's;
* **HTTP** -- the ``X-Repro-Trace`` header carries
  ``<trace_id>-<span_id>`` (32 + 16 lowercase hex characters, dash
  separated).  The daemon honors an inbound header, tags its access-log
  records with it, and echoes its own child context back in the
  response, so a client can follow its request into the server's logs.

The *ambient* context is a per-thread stack with a process-wide
fallback: CLIs install one context for the whole invocation
(:func:`set_current`), request handlers push and pop around one request
(:func:`activate`).  Everything here is stdlib-only and imports nothing
from the rest of the repo, so any layer may depend on it.
"""

from __future__ import annotations

import os
import re
import threading
from typing import Iterator, Optional

#: HTTP header carrying the trace context across the client/daemon hop.
TRACE_HEADER = "X-Repro-Trace"

_HEADER_PATTERN = re.compile(r"^([0-9a-f]{32})-([0-9a-f]{16})$")


def new_trace_id() -> str:
    """A fresh 128-bit trace id as 32 lowercase hex characters."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """A fresh 64-bit span id as 16 lowercase hex characters."""
    return os.urandom(8).hex()


class TraceContext:
    """One participant's position in a trace: (trace id, span id).

    Immutable by convention: derive, never mutate.  ``child()`` is the
    only way to extend a trace -- it keeps the trace id, allocates a
    fresh span id, and remembers the parent's span id so a tree can be
    reassembled from the records alone.

    >>> parent = TraceContext.new()
    >>> child = parent.child()
    >>> child.trace_id == parent.trace_id
    True
    >>> child.parent_id == parent.span_id
    True
    """

    __slots__ = ("trace_id", "span_id", "parent_id")

    def __init__(
        self,
        trace_id: str,
        span_id: Optional[str] = None,
        parent_id: Optional[str] = None,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id if span_id is not None else new_span_id()
        self.parent_id = parent_id

    @classmethod
    def new(cls) -> "TraceContext":
        """A root context: fresh trace id, fresh span id, no parent."""
        return cls(new_trace_id())

    def child(self) -> "TraceContext":
        """A new participant under this one, in the same trace."""
        return TraceContext(
            self.trace_id, new_span_id(), parent_id=self.span_id
        )

    # -- header protocol ----------------------------------------------

    def to_header(self) -> str:
        """The ``X-Repro-Trace`` header value: ``trace_id-span_id``."""
        return f"{self.trace_id}-{self.span_id}"

    @classmethod
    def from_header(cls, value: Optional[str]) -> Optional["TraceContext"]:
        """Parse a header value; ``None`` for anything malformed.

        Tolerant on purpose: a foreign or corrupted header must degrade
        to "untraced request", never to a 500.
        """
        if not value:
            return None
        match = _HEADER_PATTERN.match(value.strip().lower())
        if match is None:
            return None
        return cls(match.group(1), match.group(2))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TraceContext)
            and self.trace_id == other.trace_id
            and self.span_id == other.span_id
            and self.parent_id == other.parent_id
        )

    def __hash__(self) -> int:
        return hash((self.trace_id, self.span_id, self.parent_id))

    def __repr__(self) -> str:
        return f"TraceContext({self.trace_id}, span={self.span_id})"


# -- ambient context ---------------------------------------------------------

_local = threading.local()
_process_context: Optional[TraceContext] = None


def set_current(context: Optional[TraceContext]) -> None:
    """Install ``context`` as this process's ambient trace context.

    The process-wide slot, not the thread stack: this is what a CLI
    calls once at startup so everything downstream -- including fork
    workers, which inherit it through the executor -- agrees on the
    trace id.  Pass ``None`` to clear.
    """
    global _process_context
    _process_context = context


def current() -> Optional[TraceContext]:
    """The innermost active context: thread stack first, then process."""
    stack = getattr(_local, "stack", None)
    if stack:
        return stack[-1]
    return _process_context


def activate(context: TraceContext) -> "_Activation":
    """Context manager pushing ``context`` on this thread's stack.

    For scoped participants -- one daemon request, one worker chunk --
    where the context must not leak to the next unit of work on the
    same thread.

    >>> with activate(TraceContext.new()) as context:
    ...     current() is context
    True
    """
    return _Activation(context)


class _Activation:
    __slots__ = ("_context",)

    def __init__(self, context: TraceContext) -> None:
        self._context = context

    def __enter__(self) -> TraceContext:
        stack = getattr(_local, "stack", None)
        if stack is None:
            stack = _local.stack = []
        stack.append(self._context)
        return self._context

    def __exit__(self, *exc_info) -> bool:
        _local.stack.pop()
        return False


def current_header() -> Optional[str]:
    """The ambient context as a header value, or ``None``."""
    context = current()
    return context.to_header() if context is not None else None


def __dir__() -> Iterator[str]:  # pragma: no cover - introspection sugar
    return iter(sorted(globals()))
