"""PROFSTORE query/diff engine and the ``repro-profile diff`` CLI."""

import json
import random

import pytest

from repro.baselines.dependence_lossless import LosslessDependenceProfiler
from repro.cli import main as profile_main
from repro.core.events import AccessKind
from repro.core.profile_io import ProfileFormatError, dumps
from repro.profilers.leap import LeapProfiler
from repro.profilers.whomp import WhompProfiler
from repro.runtime.process import Process
from repro.store import ProfileStore, QueryEngine
from repro.store.diff import (
    ProfileDiff,
    detect_regressions,
    diff_texts,
    render_diff,
)
from repro.store.serve_cli import main as serve_main


def make_trace(offsets, stores=()):
    process = Process()
    ld = process.instruction("ld", AccessKind.LOAD)
    st = process.instruction("st", AccessKind.STORE)
    block = process.malloc("site", 1024, type_name="long[]")
    for offset in offsets:
        process.load(ld, block + (offset % 128) * 8)
    for offset in stores:
        process.store(st, block + (offset % 128) * 8)
    process.free(block)
    process.finish()
    return process.trace


@pytest.fixture(scope="module")
def regular_leap():
    return dumps(LeapProfiler().profile(make_trace(range(100))))


@pytest.fixture(scope="module")
def irregular_leap():
    rng = random.Random(1)
    offsets = [rng.randrange(128) for __ in range(100)]
    return dumps(LeapProfiler().profile(make_trace(offsets)))


class TestDiffLeap:
    def test_identical_documents(self, regular_leap):
        diff = diff_texts(regular_leap, regular_leap)
        assert diff.kind == "leap"
        assert diff.identical
        assert not detect_regressions(diff)
        assert "no regressions detected" in render_diff(diff, [])

    def test_degraded_candidate_flags_regressions(
        self, regular_leap, irregular_leap
    ):
        diff = diff_texts(regular_leap, irregular_leap, "base", "cand")
        assert not diff.identical
        flagged = {r.metric for r in detect_regressions(diff)}
        # the random candidate compresses worse and captures less
        assert "bytes_per_access" in flagged
        assert "descriptors_per_entry" in flagged
        assert "accesses_captured" in flagged
        report = render_diff(diff, detect_regressions(diff))
        assert "REGRESSIONS" in report

    def test_improvement_is_not_a_regression(
        self, regular_leap, irregular_leap
    ):
        # swapping sides: candidate got *better*; nothing to flag
        diff = diff_texts(irregular_leap, regular_leap)
        assert not detect_regressions(diff)

    def test_entry_drift_key_sets(self, regular_leap):
        with_stores = dumps(
            LeapProfiler().profile(make_trace(range(100), stores=range(16)))
        )
        diff = diff_texts(regular_leap, with_stores)
        assert (1, 0) in diff.added_keys  # the store instruction's entry
        reverse = diff_texts(with_stores, regular_leap)
        assert (1, 0) in reverse.removed_keys

    def test_tolerances_are_tunable(self, regular_leap, irregular_leap):
        diff = diff_texts(regular_leap, irregular_leap)
        lax = detect_regressions(
            diff, ratio_tolerance=1e9, capture_tolerance=2.0
        )
        assert not lax


class TestDiffWhomp:
    def test_identical_and_drifted(self):
        doc_a = dumps(WhompProfiler().profile(make_trace(range(64))))
        doc_b = dumps(
            WhompProfiler().profile(make_trace([o * 3 for o in range(64)]))
        )
        same = diff_texts(doc_a, doc_a)
        assert same.kind == "whomp"
        assert same.identical
        drifted = diff_texts(doc_a, doc_b)
        assert "grammar_symbols.total" in drifted.metrics
        assert "symbols_per_access" in drifted.metrics
        assert drifted.metrics["access_count"]["a"] == 64


class TestDiffDependence:
    def test_conflict_pair_changes(self):
        prof_a = LosslessDependenceProfiler().profile(
            make_trace(range(32), stores=range(32))
        )
        prof_b = LosslessDependenceProfiler().profile(
            make_trace(range(32), stores=range(0, 64, 2))
        )
        same = diff_texts(dumps(prof_a), dumps(prof_a))
        assert same.kind == "dependence"
        assert same.identical
        drifted = diff_texts(dumps(prof_a), dumps(prof_b))
        assert "conflict_total" in drifted.metrics

    def test_format_mismatch_refused(self, regular_leap):
        whomp = dumps(WhompProfiler().profile(make_trace(range(16))))
        with pytest.raises(ProfileFormatError, match="cannot diff"):
            diff_texts(regular_leap, whomp)


class TestDetectRegressionsUnit:
    @staticmethod
    def synthetic(metrics):
        return ProfileDiff(
            kind="leap", label_a="a", label_b="b",
            added_keys=[], removed_keys=[], changed=[], metrics=metrics,
        )

    def test_ratio_growth_within_tolerance_passes(self):
        diff = self.synthetic(
            {"bytes_per_access": {"a": 1.0, "b": 1.09}}
        )
        assert not detect_regressions(diff)

    def test_ratio_growth_past_tolerance_flags(self):
        diff = self.synthetic(
            {"bytes_per_access": {"a": 1.0, "b": 1.11}}
        )
        flagged = detect_regressions(diff)
        assert [r.metric for r in flagged] == ["bytes_per_access"]
        assert flagged[0].to_json()["baseline"] == 1.0

    def test_capture_drop_is_absolute(self):
        diff = self.synthetic(
            {"capture_completeness": {"a": 1.0, "b": 0.94}}
        )
        assert detect_regressions(diff)
        diff = self.synthetic(
            {"capture_completeness": {"a": 1.0, "b": 0.96}}
        )
        assert not detect_regressions(diff)


class TestQueryEngine:
    @pytest.fixture()
    def engine(self, tmp_path, regular_leap):
        store = ProfileStore(str(tmp_path))
        store.ingest_text(regular_leap, "alpha")
        store.ingest_text(
            dumps(LeapProfiler().profile(make_trace(range(0, 64, 2)))), "beta"
        )
        store.ingest_text(
            dumps(WhompProfiler().profile(make_trace(range(16)))), "beta"
        )
        return QueryEngine(store)

    def test_find_runs_filters(self, engine):
        assert len(engine.find_runs()) == 3
        assert len(engine.find_runs(workload="beta")) == 2
        assert len(engine.find_runs(workload="beta", kind="leap")) == 1
        assert engine.find_runs(workload="nope") == []

    def test_find_entries_filters(self, engine):
        rows = engine.find_entries()
        assert rows  # only LEAP runs contribute entries
        assert {row["workload"] for row in rows} == {"alpha", "beta"}
        only_alpha = engine.find_entries(workload="alpha")
        assert all(row["workload"] == "alpha" for row in only_alpha)
        assert engine.find_entries(min_count=10**9) == []
        by_instruction = engine.find_entries(instruction=0)
        assert all(row["instruction"] == 0 for row in by_instruction)

    def test_stride_filter(self, engine):
        rows = engine.find_entries(workload="alpha")
        stride = tuple(rows[0]["strides"][0])
        assert engine.find_entries(workload="alpha", stride=stride)
        assert not engine.find_entries(workload="alpha", stride=(123456,))

    def test_lmad_shapes(self, engine):
        shapes = engine.lmad_shapes("alpha@leap")
        assert shapes
        assert {"stride", "descriptors", "accesses"} <= set(shapes[0])


class TestProfileDiffCLI:
    """``repro-profile diff A B`` over loose profile files."""

    @pytest.fixture()
    def files(self, tmp_path, regular_leap, irregular_leap):
        a = tmp_path / "base.leap.json"
        b = tmp_path / "cand.leap.json"
        a.write_text(regular_leap)
        b.write_text(irregular_leap)
        return str(a), str(b)

    def test_identical_exits_zero(self, files, capsys):
        a, __ = files
        assert profile_main(["diff", a, a]) == 0
        assert "identical" in capsys.readouterr().out

    def test_regression_exits_one(self, files, capsys):
        a, b = files
        assert profile_main(["diff", a, b]) == 1
        assert "REGRESSIONS" in capsys.readouterr().out

    def test_json_output(self, files, capsys):
        a, b = files
        assert profile_main(["diff", a, b, "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "leap"
        assert payload["regressions"]
        assert not payload["identical"]

    def test_bad_input_exits_two(self, files, tmp_path, capsys):
        a, __ = files
        garbage = tmp_path / "garbage.json"
        garbage.write_text("not a profile")
        assert profile_main(["diff", a, str(garbage)]) == 2
        with pytest.raises(SystemExit):
            profile_main(["diff", a, str(tmp_path / "missing.json")])


class TestServeDiffCLI:
    """``repro-serve diff`` over store selectors."""

    @pytest.fixture()
    def root(self, tmp_path, regular_leap, irregular_leap):
        store = ProfileStore(str(tmp_path))
        store.ingest_text(regular_leap, "bench")
        store.ingest_text(irregular_leap, "bench")
        return str(tmp_path)

    def test_selector_diff(self, root, capsys):
        code = serve_main(
            ["diff", "--root", root, "bench@leap~1", "bench@leap"]
        )
        assert code == 1  # the irregular candidate regresses
        assert "REGRESSIONS" in capsys.readouterr().out
        assert (
            serve_main(["diff", "--root", root, "r000001", "r000001"]) == 0
        )

    def test_bad_selector_exits_two(self, root, capsys):
        code = serve_main(["diff", "--root", root, "bench@leap", "nope@leap"])
        assert code == 2
        assert "no run matches" in capsys.readouterr().err
