"""PROFSTORE bench: ingest/query latency and the serving cache floor.

Three measurements over the eight bundled workloads (the seven SPEC
stand-ins plus ``micro.array``):

* **ingest** -- validate + compress + manifest-append every WHOMP and
  LEAP document into a fresh store (16 documents);
* **query** -- a repeated-query pattern against the populated store
  (the daemon's hot path: entries filtered by workload, shapes, diffs
  of latest-vs-previous);
* **cache** -- the acceptance floor: the decoded-profile LRU must
  serve >= 50% of lookups on that repeated pattern, because every
  decode after a run's first query is a hit.
"""

import tempfile

from conftest import once

from repro.core.profile_io import dumps
from repro.store import ProfileStore, QueryEngine, detect_regressions, diff_texts


def bundled_documents(context):
    """(workload, text) for every WHOMP/LEAP document of the suite."""
    names = list(context.benchmarks) + ["micro.array"]
    documents = []
    for name in names:
        documents.append((name, dumps(context.whomp(name))))
        documents.append((name, dumps(context.leap(name))))
    return documents


def test_store_ingest_latency(benchmark, context):
    documents = bundled_documents(context)

    def ingest_all():
        with tempfile.TemporaryDirectory() as root:
            store = ProfileStore(root)
            for workload, text in documents:
                store.ingest_text(text, workload)
            return store.stats()

    stats = once(benchmark, ingest_all)
    print()
    print(f"ingested {stats['runs']} runs / {stats['blobs']} blobs, "
          f"{stats['profile_bytes']} -> {stats['stored_bytes']} bytes "
          f"(compression "
          f"{stats['profile_bytes'] / max(1, stats['stored_bytes']):.1f}x)")
    assert stats["runs"] == len(documents)
    # zlib should beat the raw documents comfortably on JSON text
    assert stats["stored_bytes"] < stats["profile_bytes"]


def test_store_query_latency_and_cache_floor(benchmark, context):
    documents = bundled_documents(context)
    root = tempfile.mkdtemp(prefix="repro-bench-store-")
    store = ProfileStore(root, cache_size=32)
    for workload, text in documents:
        store.ingest_text(text, workload)
        store.ingest_text(text, workload)  # a second run per document
    engine = QueryEngine(store)
    workloads = sorted({w for w, __ in documents})

    def repeated_queries():
        rows = 0
        for __ in range(5):
            for workload in workloads:
                rows += len(engine.find_entries(workload=workload,
                                                min_count=1))
                diff = diff_texts(
                    store.get_text(f"{workload}@leap~1"),
                    store.get_text(f"{workload}@leap"),
                )
                assert not detect_regressions(diff)
        return rows

    rows = once(benchmark, repeated_queries)
    hits, misses, __ = store.cache.stats()
    print()
    print(f"{rows} entry rows over {len(workloads)} workloads; "
          f"cache {hits} hits / {misses} misses "
          f"(hit rate {store.cache.hit_rate:.0%})")
    assert rows > 0
    # the acceptance floor: repeated queries are mostly cache hits
    assert store.cache.hit_rate >= 0.5
