"""Telemetry exporters: human report, JSON, Prometheus text exposition.

One :class:`~repro.telemetry.spans.Telemetry` object renders three ways:

* :func:`render_report` -- the operator view: an indented span tree with
  per-stage wall time, call counts, and throughput, followed by the
  metric catalog.  This is what ``--telemetry report`` prints.
* :func:`render_json` -- the machine view, mirroring the experiments
  runner's ``--json`` convention.
* :func:`render_prometheus` -- the scrape view, in the Prometheus text
  exposition format (``# TYPE`` comments, ``_bucket{le=...}`` histogram
  series, spans as ``repro_span_seconds_total{span="..."}``).

Metric names use dots internally (``whomp.grammar_rules``) and are
sanitized to underscores with a ``repro_`` prefix for Prometheus.
"""

from __future__ import annotations

import json
import re
import sys
from typing import IO, Dict, List, Optional

from repro.telemetry.registry import Counter, Gauge, Histogram
from repro.telemetry.spans import Span, Telemetry

#: Exporter mode names accepted by the CLIs' ``--telemetry`` flag.
MODES = ("report", "json", "prom")


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f}s "
    return f"{seconds * 1e3:8.2f}ms"


def _format_rate(rate: float) -> str:
    if rate >= 1e6:
        return f"{rate / 1e6:.2f}M"
    if rate >= 1e3:
        return f"{rate / 1e3:.1f}k"
    return f"{rate:.0f}"


def render_report(telemetry: Telemetry) -> str:
    """The human-readable telemetry report."""
    lines: List[str] = ["== telemetry report =="]
    spans = telemetry.spans()
    if spans:
        lines.append("span tree (wall time / calls / throughput):")
        for top in spans:
            for depth, span in top.walk():
                detail = f"{_format_seconds(span.seconds)}  x{span.calls}"
                if span.items:
                    detail += (
                        f"  {span.items} {span.unit}"
                        f"  ({_format_rate(span.throughput)} {span.unit}/s)"
                    )
                lines.append(f"  {'  ' * depth}{span.name:<{24 - 2 * depth}} {detail}")
    metrics = list(telemetry.registry)
    if metrics:
        lines.append("metrics:")
        for metric in metrics:
            if isinstance(metric, Histogram):
                lines.append(
                    f"  {metric.name:<32} n={metric.count} sum={metric.sum:g} "
                    f"min={metric.minimum if metric.minimum is not None else '-'} "
                    f"max={metric.maximum if metric.maximum is not None else '-'} "
                    f"mean={metric.mean:g}"
                )
            else:
                value = metric.value
                shown = f"{value:g}" if isinstance(value, float) else str(value)
                lines.append(f"  {metric.name:<32} {shown}")
    if len(lines) == 1:
        lines.append("(no spans or metrics recorded)")
    return "\n".join(lines)


def _span_to_dict(span: Span) -> Dict[str, object]:
    out: Dict[str, object] = {
        "name": span.name,
        "seconds": span.seconds,
        "calls": span.calls,
    }
    if span.items:
        out["items"] = span.items
        out["unit"] = span.unit
        out["throughput"] = span.throughput
    if span.children:
        out["children"] = [_span_to_dict(c) for c in span.children.values()]
    return out


def telemetry_to_dict(telemetry: Telemetry) -> Dict[str, object]:
    """Plain-data form of the span tree and registry."""
    counters: Dict[str, object] = {}
    gauges: Dict[str, object] = {}
    histograms: Dict[str, object] = {}
    for metric in telemetry.registry:
        if isinstance(metric, Counter):
            counters[metric.name] = metric.value
        elif isinstance(metric, Gauge):
            gauges[metric.name] = metric.value
        elif isinstance(metric, Histogram):
            histograms[metric.name] = {
                "count": metric.count,
                "sum": metric.sum,
                "min": metric.minimum,
                "max": metric.maximum,
                "buckets": [
                    {"le": bound if bound != float("inf") else "+Inf",
                     "count": count}
                    for bound, count in metric.cumulative_buckets()
                ],
            }
    return {
        "spans": [_span_to_dict(s) for s in telemetry.spans()],
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
    }


def render_json(telemetry: Telemetry, indent: int = 2) -> str:
    return json.dumps(telemetry_to_dict(telemetry), indent=indent)


_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str, prefix: str = "repro_") -> str:
    return prefix + _PROM_INVALID.sub("_", name)


def _prom_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    return f"{value:g}"


def render_prometheus(telemetry: Telemetry) -> str:
    """Prometheus text exposition format (version 0.0.4)."""
    lines: List[str] = []
    for metric in telemetry.registry:
        name = _prom_name(metric.name)
        if metric.help:
            lines.append(f"# HELP {name} {metric.help}")
        lines.append(f"# TYPE {name} {metric.kind}")
        if isinstance(metric, Histogram):
            for bound, count in metric.cumulative_buckets():
                lines.append(
                    f'{name}_bucket{{le="{_prom_value(bound)}"}} {count}'
                )
            lines.append(f"{name}_sum {_prom_value(metric.sum)}")
            lines.append(f"{name}_count {metric.count}")
        else:
            lines.append(f"{name} {_prom_value(metric.value)}")
    spans = [span for top in telemetry.spans() for __, span in top.walk()]
    if spans:
        lines.append("# TYPE repro_span_seconds_total counter")
        for span in spans:
            lines.append(
                f'repro_span_seconds_total{{span="{span.path}"}} '
                f"{_prom_value(span.seconds)}"
            )
        lines.append("# TYPE repro_span_calls_total counter")
        for span in spans:
            lines.append(
                f'repro_span_calls_total{{span="{span.path}"}} {span.calls}'
            )
        lines.append("# TYPE repro_span_items_total counter")
        for span in spans:
            if span.items:
                lines.append(
                    f'repro_span_items_total{{span="{span.path}"}} {span.items}'
                )
    return "\n".join(lines) + ("\n" if lines else "")


def render(telemetry: Telemetry, mode: str) -> str:
    """Render in the named mode (one of :data:`MODES`)."""
    if mode == "report":
        return render_report(telemetry)
    if mode == "json":
        return render_json(telemetry)
    if mode == "prom":
        return render_prometheus(telemetry)
    raise ValueError(f"unknown telemetry mode {mode!r}; choose from {MODES}")


def emit(
    telemetry: Telemetry,
    mode: Optional[str],
    out_path: Optional[str] = None,
    stream: Optional[IO[str]] = None,
) -> None:
    """Render and deliver: to ``out_path`` if given, else to ``stream``
    (default stdout).  A no-op when ``mode`` is None."""
    if mode is None:
        return
    text = render(telemetry, mode)
    if out_path:
        # Atomic like every other artifact write (profiles, checkpoints,
        # JSON results): a crash mid-emit must not leave a torn file a
        # scraper would half-parse.
        from repro.core.fsutil import atomic_write_text

        atomic_write_text(
            out_path, text if text.endswith("\n") else text + "\n"
        )
        target = stream if stream is not None else sys.stdout
        target.write(f"telemetry written to {out_path}\n")
    else:
        target = stream if stream is not None else sys.stdout
        target.write(text if text.endswith("\n") else text + "\n")
