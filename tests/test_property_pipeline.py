"""Property-based tests over the whole pipeline.

A hypothesis strategy generates random-but-valid process scripts
(allocations, frees, loads/stores into live blocks); every generated
trace must satisfy the library's global invariants: WHOMP losslessness,
online/offline agreement, translation consistency, LEAP accounting.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cdc import OnlineCDC, translate_trace_list
from repro.core.events import AccessKind
from repro.profilers.leap import LeapProfiler
from repro.profilers.whomp import WhompProfiler
from repro.runtime.process import Process


@st.composite
def process_script(draw):
    """A list of abstract operations over a bounded object population."""
    operations = []
    live = 0
    for __ in range(draw(st.integers(1, 60))):
        choice = draw(st.integers(0, 9))
        if choice == 0 or live == 0:
            operations.append(("alloc", draw(st.integers(1, 4)), draw(st.integers(8, 256))))
            live += 1
        elif choice == 1 and live > 1:
            operations.append(("free", draw(st.integers(0, live - 1))))
            live -= 1
        else:
            operations.append(
                (
                    "access",
                    draw(st.integers(0, live - 1)),
                    draw(st.integers(0, 31)),
                    draw(st.booleans()),
                    draw(st.integers(0, 3)),
                )
            )
    return operations


def run_script(operations, process):
    """Interpret the abstract script against a process."""
    blocks = []  # (address, size)
    instructions = {}
    for operation in operations:
        if operation[0] == "alloc":
            __, site, size = operation
            address = process.malloc(f"site{site}", size)
            blocks.append((address, size))
        elif operation[0] == "free":
            __, index = operation
            address, __size = blocks.pop(index % len(blocks))
            process.free(address)
        else:
            __, index, offset_slot, is_load, instr_slot = operation
            address, size = blocks[index % len(blocks)]
            offset = (offset_slot * 8) % max(size - 7, 1)
            kind = AccessKind.LOAD if is_load else AccessKind.STORE
            name = f"{'ld' if is_load else 'st'}{instr_slot}"
            instr = instructions.get(name)
            if instr is None:
                instr = process.instruction(name, kind)
                instructions[name] = instr
            if is_load:
                process.load(instr, address + offset)
            else:
                process.store(instr, address + offset)
    for address, __size in blocks:
        process.free(address)
    process.finish()


@settings(max_examples=60, deadline=None)
@given(process_script())
def test_whomp_lossless_on_random_scripts(operations):
    process = Process()
    run_script(operations, process)
    trace = process.trace
    profile = WhompProfiler().profile(trace)
    raw = [(e.instruction_id, e.address) for e in trace.accesses()]
    assert profile.reconstruct_accesses() == raw


@settings(max_examples=40, deadline=None)
@given(process_script())
def test_online_translation_matches_offline(operations):
    collected = []
    process = Process()
    process.bus.attach(OnlineCDC(collected.append))
    run_script(operations, process)
    assert collected == translate_trace_list(process.trace)


@settings(max_examples=40, deadline=None)
@given(process_script())
def test_translation_invariants(operations):
    process = Process()
    run_script(operations, process)
    translated = translate_trace_list(process.trace)
    times = [a.time for a in translated]
    assert times == list(range(len(times)))
    for access in translated:
        # scripts only touch live blocks, so nothing is wild, and the
        # offset always lies inside the object
        assert not access.wild
        assert access.offset >= 0


@settings(max_examples=30, deadline=None)
@given(process_script(), st.integers(1, 40))
def test_leap_accounting_on_random_scripts(operations, budget):
    process = Process()
    run_script(operations, process)
    trace = process.trace
    profile = LeapProfiler(budget=budget).profile(trace)
    assert sum(profile.exec_counts.values()) == trace.access_count
    captured = sum(e.captured_symbols for e in profile.entries.values())
    overflowed = sum(e.overflow.count for e in profile.entries.values())
    assert captured + overflowed == trace.access_count
    assert 0.0 <= profile.accesses_captured() <= 1.0
    for entry in profile.entries.values():
        assert len(entry.lmads) <= budget
