"""Streaming ingest: ``/ingest/stream``, body framing, and torn tails.

The daemon must assemble BINCAP stream frames into validated blobs
while the producer is still running, survive producers that die
mid-stream (degraded ingest, never a torn blob), and police request
bodies: malformed ``Content-Length`` is a 400, oversized bodies a 413,
and ``Transfer-Encoding: chunked`` is decoded on the wire.
"""

import json
import socket
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core import binformat as bf
from repro.core import profile_io as pio
from repro.core.binformat import StreamWriter
from repro.core.events import AccessKind
from repro.profilers.leap import LeapProfiler
from repro.runtime.process import Process
from repro.store import ProfileStore
from repro.store.server import StoreServer
from repro.telemetry import Telemetry


def make_leap_bytes(offsets, fmt="binary"):
    process = Process()
    ld = process.instruction("ld", AccessKind.LOAD)
    block = process.malloc("site", 512, type_name="long[]")
    for offset in offsets:
        process.load(ld, block + (offset % 64) * 8)
    process.free(block)
    process.finish()
    return pio.dumps_bytes(LeapProfiler().profile(process.trace), fmt)


@pytest.fixture()
def store(tmp_path):
    return ProfileStore(str(tmp_path), cache_size=8)


@pytest.fixture()
def server(store):
    instance = StoreServer(
        store, port=0, telemetry=Telemetry(), max_body_bytes=1 << 20
    ).start()
    yield instance
    instance.stop()


def stream_wire(documents, close=True):
    chunks = []
    writer = StreamWriter(chunks.append)
    writer.begin()
    for workload, payload in documents:
        writer.send_document(workload, payload)
    if close:
        writer.close()
    return b"".join(chunks)


def post_stream(server, wire, query=""):
    request = urllib.request.Request(
        f"{server.url}/ingest/stream{query}", data=wire, method="POST"
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


def post_raw(server, path, body, headers, half_close=False):
    """One hand-rolled HTTP request over a raw socket."""
    host, port = server.address
    sock = socket.create_connection((host, port), timeout=10)
    try:
        lines = [f"POST {path} HTTP/1.1", f"Host: {host}"]
        lines += [f"{k}: {v}" for k, v in headers.items()]
        sock.sendall(("\r\n".join(lines) + "\r\n\r\n").encode())
        if body:
            sock.sendall(body)
        if half_close:
            sock.shutdown(socket.SHUT_WR)
        sock.settimeout(10)
        raw = b""
        while b"\r\n\r\n" not in raw:
            piece = sock.recv(4096)
            if not piece:
                break
            raw += piece
        status = int(raw.split(b" ", 2)[1])
        return status
    finally:
        sock.close()


class TestStreamIngest:
    def test_streamed_documents_land_as_runs(self, server, store):
        wire = stream_wire(
            [("alpha", make_leap_bytes(range(80))),
             ("beta", make_leap_bytes(range(0, 160, 2), fmt="json"))]
        )
        status, payload = post_stream(server, wire)
        assert status == 201
        assert payload["complete"]
        assert payload["capture_completeness"] == 1.0
        assert [r["kind"] for r in payload["ingested"]] == ["leap", "leap"]
        runs = store.runs()
        assert [r.workload for r in runs] == ["alpha", "beta"]
        assert runs[0].meta["encoding"] == "binary"
        assert runs[1].meta["encoding"] == "json"
        assert runs[0].meta["source"] == "http-stream"
        # the stored bytes decode through the normal read path
        for record in runs:
            store.get(record.run_id)

    def test_stream_meta_rides_into_run_meta(self, server, store):
        chunks = []
        writer = StreamWriter(chunks.append)
        writer.send_document(
            "alpha", make_leap_bytes(range(40)), meta={"scale": 0.5}
        )
        writer.close()
        status, payload = post_stream(server, b"".join(chunks))
        assert status == 201
        assert store.runs()[0].meta["scale"] == 0.5

    def test_corrupt_document_rejected_rest_ingested(self, server, store):
        good = make_leap_bytes(range(80))
        wire = stream_wire(
            [("bad", b"\x00garbage"), ("good", good)]
        )
        status, payload = post_stream(server, wire)
        assert status == 200  # degraded, not failed
        assert not payload["complete"]
        assert len(payload["ingested"]) == 1
        assert len(payload["rejected"]) == 1
        assert payload["rejected"][0]["workload"] == "bad"
        assert [r.workload for r in store.runs()] == ["good"]

    def test_mid_stream_kill_leaves_store_valid(self, server, store):
        """A producer dying mid-document: verified docs stay, no torn
        blob is stored, and the degraded ingest is on the event log."""
        doc = make_leap_bytes(range(80))
        wire = stream_wire([("one", doc), ("two", doc)], close=False)
        head = bytearray()
        payload = bytearray()
        bf.write_token(payload, "three")
        bf.write_token(payload, "")
        bf.write_frame(head, bf.FRAME_DOC_BEGIN, bytes(payload))
        partial = wire + bytes(head)

        host, port = server.address
        sock = socket.create_connection((host, port), timeout=10)
        sock.sendall(
            (f"POST /ingest/stream HTTP/1.1\r\nHost: {host}\r\n"
             "Transfer-Encoding: chunked\r\n\r\n").encode()
        )
        sock.sendall(f"{len(partial):x}\r\n".encode() + partial + b"\r\n")
        time.sleep(0.2)
        sock.close()  # no terminating chunk, no STREAM_END

        def stream_events():
            return [
                e for e in server.events.tail()
                if e.get("kind") == "stream_ingest"
            ]

        # the docs land while the stream is live; the summary event only
        # fires once the server notices the dead socket
        deadline = time.time() + 5
        while time.time() < deadline and not stream_events():
            time.sleep(0.05)
        runs = store.runs()
        assert [r.workload for r in runs] == ["one", "two"]
        for record in runs:  # every stored blob decodes cleanly
            store.get(record.run_id)
        events = stream_events()
        assert events, "degraded stream ingest must be recorded"
        record = events[-1]
        assert record["ingested"] == 2
        assert record["torn"] == 1
        assert not record["complete"]
        assert 0 < record["capture_completeness"] < 1

    def test_concurrent_streams_all_land(self, server, store):
        def one_stream(index):
            wire = stream_wire(
                [(f"w{index}", make_leap_bytes(range(40 + index)))]
            )
            return post_stream(server, wire)[1]

        with ThreadPoolExecutor(max_workers=4) as pool:
            results = list(pool.map(one_stream, range(6)))
        assert all(len(r["ingested"]) == 1 for r in results)
        assert len(store.runs()) == 6
        assert len({r.run_id for r in store.runs()}) == 6

    def test_empty_complete_stream_is_not_degraded(self, server, store):
        chunks = []
        writer = StreamWriter(chunks.append)
        writer.begin()
        writer.close()
        status, payload = post_stream(server, b"".join(chunks))
        assert status == 201
        assert payload["complete"]
        assert payload["ingested"] == []
        assert store.runs() == []

    def test_garbage_stream_is_a_400(self, server, store):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post_stream(server, b"this is not a stream at all")
        assert excinfo.value.code == 400
        assert store.runs() == []


class TestBodyFraming:
    def test_malformed_content_length_is_400(self, server):
        status = post_raw(
            server, "/ingest?workload=x", b"",
            {"Content-Length": "banana"},
        )
        assert status == 400

    def test_negative_content_length_is_400(self, server):
        status = post_raw(
            server, "/ingest?workload=x", b"",
            {"Content-Length": "-5"},
        )
        assert status == 400

    def test_oversized_body_is_413(self, server):
        status = post_raw(
            server, "/ingest?workload=x", b"",
            {"Content-Length": str(1 << 30)},
        )
        assert status == 413

    def test_short_body_is_400(self, server, store):
        status = post_raw(
            server, "/ingest?workload=x", b"only-ten-b",
            {"Content-Length": "100", "Connection": "close"},
            half_close=True,
        )
        assert status == 400
        assert store.runs() == []

    def test_chunked_ingest_is_decoded(self, server, store):
        data = make_leap_bytes(range(80), fmt="json")
        body = b""
        for offset in range(0, len(data), 100):
            piece = data[offset : offset + 100]
            body += f"{len(piece):x}\r\n".encode() + piece + b"\r\n"
        body += b"0\r\n\r\n"
        status = post_raw(
            server, "/ingest?workload=chunky", body,
            {"Transfer-Encoding": "chunked"},
        )
        assert status == 201
        assert [r.workload for r in store.runs()] == ["chunky"]

    def test_binary_document_ingests_over_plain_post(self, server, store):
        data = make_leap_bytes(range(80))
        request = urllib.request.Request(
            f"{server.url}/ingest?workload=bin", data=data, method="POST"
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            assert response.status == 201
        record = store.runs()[0]
        assert record.meta["encoding"] == "binary"
        # /get serves the binary run as a JSON document
        with urllib.request.urlopen(
            f"{server.url}/get?run=bin@leap", timeout=10
        ) as response:
            document = json.loads(response.read())
        assert document["format"] == "leap"

    def test_diff_across_encodings(self, server, store):
        store.ingest_bytes(make_leap_bytes(range(80)), "mix")
        store.ingest_bytes(make_leap_bytes(range(0, 160, 2), fmt="json"), "mix")
        with urllib.request.urlopen(
            f"{server.url}/diff?a=mix@leap~1&b=mix@leap", timeout=10
        ) as response:
            payload = json.loads(response.read())
        assert payload["kind"] == "leap"
