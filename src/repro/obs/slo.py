"""Declarative latency/dilation SLOs over the structured event log.

The PR 5 differ established the idiom: a declarative threshold file, a
pure evaluation pass producing verdict objects, a renderer, and an exit
code that makes CI the enforcement point (``repro-obs slo check`` exits
1 on breach).  TRACELINK applies it to latencies: the thresholds the
ROADMAP's SCALE-OUT item will be measured against live in a JSON file
reviewed like code, not in someone's head.

SLO file shape (``"version": 1``)::

    {"version": 1, "slos": [
        {"name": "ingest-p99", "kind": "latency",
         "event": "request", "match": {"endpoint": "ingest"},
         "quantile": 0.99, "max_seconds": 0.5},
        {"name": "pipeline-p50", "kind": "latency",
         "event": "stage", "match": {"path": "whomp"},
         "quantile": 0.5, "max_seconds": 5.0},
        {"name": "obs-overhead", "kind": "dilation",
         "numerator": "whomp/compression", "denominator": "whomp",
         "max_ratio": 0.9}
    ]}

* ``latency`` rules estimate the quantile of the matched events'
  ``seconds`` field (every ``match`` key must equal the event's field)
  and breach when it exceeds ``max_seconds``.
* ``dilation`` rules divide the total wall time of two span paths
  (from ``stage`` events) and breach when the ratio exceeds
  ``max_ratio`` -- the repo's own Table 1 dilation-factor shape.

A rule that matches no events **breaches** (detail ``no data``) unless
it carries ``"allow_missing": true``: an SLO silently measuring
nothing is the worst failure mode an observability layer can have.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, Iterable, List, Optional

from repro.obs.quantiles import digest_of

#: bumped when the SLO file shape changes
SLO_FILE_VERSION = 1


class SloError(ValueError):
    """The SLO file is malformed (bad JSON, unknown kind, bad field)."""


@dataclasses.dataclass(frozen=True)
class SloRule:
    """One declarative threshold."""

    name: str
    kind: str  # "latency" | "dilation"
    event: str = "request"
    match: Dict[str, object] = dataclasses.field(default_factory=dict)
    quantile: float = 0.99
    max_seconds: Optional[float] = None
    numerator: Optional[str] = None
    denominator: Optional[str] = None
    max_ratio: Optional[float] = None
    allow_missing: bool = False


@dataclasses.dataclass(frozen=True)
class SloResult:
    """One rule's verdict against one event log."""

    rule: SloRule
    ok: bool
    measured: Optional[float]
    threshold: float
    detail: str

    def to_json(self) -> Dict[str, object]:
        return {
            "name": self.rule.name,
            "kind": self.rule.kind,
            "ok": self.ok,
            "measured": self.measured,
            "threshold": self.threshold,
            "detail": self.detail,
        }


def parse_slo_document(document: Dict[str, object]) -> List[SloRule]:
    """Validate and load the rules of one SLO document."""
    if not isinstance(document, dict):
        raise SloError("SLO document must be a JSON object")
    version = document.get("version")
    if version != SLO_FILE_VERSION:
        raise SloError(
            f"unsupported SLO file version {version!r} "
            f"(this build reads version {SLO_FILE_VERSION})"
        )
    raw_rules = document.get("slos")
    if not isinstance(raw_rules, list) or not raw_rules:
        raise SloError("SLO document needs a non-empty 'slos' list")
    rules: List[SloRule] = []
    for index, raw in enumerate(raw_rules):
        if not isinstance(raw, dict):
            raise SloError(f"slos[{index}] must be an object")
        name = raw.get("name")
        if not isinstance(name, str) or not name:
            raise SloError(f"slos[{index}] needs a non-empty 'name'")
        kind = raw.get("kind", "latency")
        try:
            if kind == "latency":
                max_seconds = float(raw["max_seconds"])
                quantile = float(raw.get("quantile", 0.99))
                if not 0.0 <= quantile <= 1.0:
                    raise SloError(
                        f"slos[{index}] quantile {quantile} outside [0, 1]"
                    )
                rules.append(
                    SloRule(
                        name=name,
                        kind="latency",
                        event=str(raw.get("event", "request")),
                        match=dict(raw.get("match") or {}),
                        quantile=quantile,
                        max_seconds=max_seconds,
                        allow_missing=bool(raw.get("allow_missing", False)),
                    )
                )
            elif kind == "dilation":
                rules.append(
                    SloRule(
                        name=name,
                        kind="dilation",
                        numerator=str(raw["numerator"]),
                        denominator=str(raw["denominator"]),
                        max_ratio=float(raw["max_ratio"]),
                        allow_missing=bool(raw.get("allow_missing", False)),
                    )
                )
            else:
                raise SloError(f"slos[{index}] has unknown kind {kind!r}")
        except SloError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise SloError(f"slos[{index}] ({name}): {exc}") from exc
    return rules


def load_slo_file(path: str) -> List[SloRule]:
    try:
        with open(path) as handle:
            document = json.load(handle)
    except OSError as exc:
        raise SloError(f"cannot read SLO file {path!r}: {exc}") from exc
    except ValueError as exc:
        raise SloError(f"SLO file {path!r} is not valid JSON: {exc}") from exc
    return parse_slo_document(document)


# -- evaluation --------------------------------------------------------------


def _matches(event: Dict[str, object], rule: SloRule) -> bool:
    if event.get("kind") != rule.event:
        return False
    return all(event.get(key) == value for key, value in rule.match.items())


def _path_seconds(events: List[Dict[str, object]], path: str) -> float:
    return sum(
        float(event.get("seconds", 0.0))
        for event in events
        if event.get("kind") == "stage" and event.get("path") == path
    )


def evaluate_slos(
    rules: Iterable[SloRule], events: Iterable[Dict[str, object]]
) -> List[SloResult]:
    """Every rule's verdict against the given event records."""
    events = list(events)
    results: List[SloResult] = []
    for rule in rules:
        if rule.kind == "latency":
            assert rule.max_seconds is not None
            values = [
                float(event.get("seconds", 0.0))
                for event in events
                if _matches(event, rule)
            ]
            if not values:
                results.append(
                    SloResult(
                        rule,
                        ok=rule.allow_missing,
                        measured=None,
                        threshold=rule.max_seconds,
                        detail="no data",
                    )
                )
                continue
            measured = digest_of(values).quantile(rule.quantile)
            assert measured is not None
            results.append(
                SloResult(
                    rule,
                    ok=measured <= rule.max_seconds,
                    measured=measured,
                    threshold=rule.max_seconds,
                    detail=(
                        f"p{rule.quantile * 100:g} over {len(values)} "
                        f"event(s)"
                    ),
                )
            )
        else:  # dilation
            assert rule.max_ratio is not None
            assert rule.numerator is not None and rule.denominator is not None
            numerator = _path_seconds(events, rule.numerator)
            denominator = _path_seconds(events, rule.denominator)
            if denominator <= 0.0:
                results.append(
                    SloResult(
                        rule,
                        ok=rule.allow_missing,
                        measured=None,
                        threshold=rule.max_ratio,
                        detail=f"no data for {rule.denominator!r}",
                    )
                )
                continue
            ratio = numerator / denominator
            results.append(
                SloResult(
                    rule,
                    ok=ratio <= rule.max_ratio,
                    measured=ratio,
                    threshold=rule.max_ratio,
                    detail=(
                        f"{rule.numerator} / {rule.denominator} "
                        f"({numerator:.4f}s / {denominator:.4f}s)"
                    ),
                )
            )
    return results


def render_slo_results(results: List[SloResult]) -> str:
    lines: List[str] = []
    for result in results:
        verdict = "OK    " if result.ok else "BREACH"
        measured = (
            f"{result.measured:.6g}" if result.measured is not None else "-"
        )
        lines.append(
            f"{verdict} {result.rule.name:<24} measured={measured} "
            f"threshold={result.threshold:g}  ({result.detail})"
        )
    breaches = sum(1 for result in results if not result.ok)
    lines.append(
        f"{len(results)} SLO(s) evaluated, {breaches} breach(es)"
    )
    return "\n".join(lines)
