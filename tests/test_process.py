"""Tests for the simulated process and its probes."""

import pytest

from repro.core.events import AccessKind, AllocEvent, FreeEvent, Trace
from repro.runtime.memory import MemoryError_
from repro.runtime.probes import ProbeBus, TraceRecorder
from repro.runtime.process import STATIC_SITE_PREFIX, Process


class TestInstructions:
    def test_interning_is_stable(self):
        process = Process()
        a = process.instruction("x", AccessKind.LOAD)
        b = process.instruction("x", AccessKind.LOAD)
        assert a is b

    def test_ids_are_dense(self):
        process = Process()
        ids = [
            process.instruction(f"i{k}", AccessKind.LOAD).instruction_id
            for k in range(5)
        ]
        assert ids == [0, 1, 2, 3, 4]

    def test_kind_conflict_rejected(self):
        process = Process()
        process.instruction("x", AccessKind.LOAD)
        with pytest.raises(ValueError):
            process.instruction("x", AccessKind.STORE)

    def test_reverse_lookup(self):
        process = Process()
        instr = process.instruction("walk.next", AccessKind.LOAD)
        assert process.instruction_name(instr.instruction_id) == "walk.next"
        with pytest.raises(KeyError):
            process.instruction_name(999)


class TestStatics:
    def test_static_resolution(self):
        process = Process()
        process.declare_static("table", 128)
        symbol = process.static("table")
        assert symbol.size == 128

    def test_link_fires_static_alloc_probes(self):
        process = Process()
        process.declare_static("table", 128, type_name="long[]")
        process.link()
        allocs = [e for e in process.trace if isinstance(e, AllocEvent)]
        assert len(allocs) == 1
        assert allocs[0].site == STATIC_SITE_PREFIX + "table"
        assert allocs[0].type_name == "long[]"

    def test_finish_fires_static_free_probes(self):
        process = Process()
        process.declare_static("table", 128)
        process.link()
        process.finish()
        frees = [e for e in process.trace if isinstance(e, FreeEvent)]
        assert len(frees) == 1

    def test_finish_is_idempotent(self):
        process = Process()
        process.declare_static("table", 128)
        process.link()
        process.finish()
        process.finish()
        frees = [e for e in process.trace if isinstance(e, FreeEvent)]
        assert len(frees) == 1


class TestHeap:
    def test_malloc_fires_probe(self):
        process = Process()
        address = process.malloc("site", 64, type_name="node")
        allocs = [e for e in process.trace if isinstance(e, AllocEvent)]
        assert allocs[-1].address == address
        assert allocs[-1].site == "site"

    def test_free_fires_probe(self):
        process = Process()
        address = process.malloc("site", 64)
        process.free(address)
        frees = [e for e in process.trace if isinstance(e, FreeEvent)]
        assert frees[-1].address == address

    def test_malloc_links_lazily(self):
        process = Process()
        process.declare_static("t", 8)
        process.malloc("site", 64)
        assert process.static("t") is not None


class TestAccesses:
    def test_load_records_event(self, tiny_process):
        process = tiny_process
        base = process.static("table").address
        ld = process.instruction("ld", AccessKind.LOAD)
        process.load(ld, base)
        access = list(process.trace.accesses())[-1]
        assert access.address == base
        assert access.kind is AccessKind.LOAD

    def test_kind_mismatch_rejected(self, tiny_process):
        process = tiny_process
        base = process.static("table").address
        ld = process.instruction("ld", AccessKind.LOAD)
        st = process.instruction("st", AccessKind.STORE)
        with pytest.raises(MemoryError_):
            process.store(ld, base)
        with pytest.raises(MemoryError_):
            process.load(st, base)

    def test_unmapped_access_rejected(self, tiny_process):
        process = tiny_process
        ld = process.instruction("ld", AccessKind.LOAD)
        with pytest.raises(MemoryError_):
            process.load(ld, 0)

    def test_uninstrumented_process_has_no_trace(self):
        process = Process(record_trace=False)
        with pytest.raises(MemoryError_):
            process.trace
        # accesses still validated, but nothing recorded
        address = process.malloc("s", 64)
        st = process.instruction("st", AccessKind.STORE)
        process.store(st, address)


class TestProbeBus:
    def test_multiple_sinks_both_receive(self):
        bus = ProbeBus()
        first = TraceRecorder()
        second = TraceRecorder()
        bus.attach(first)
        bus.attach(second)
        bus.fire_access(0, 0x5000, 8, AccessKind.LOAD)
        assert first.trace.access_count == 1
        assert second.trace.access_count == 1

    def test_detach(self):
        bus = ProbeBus()
        recorder = TraceRecorder()
        bus.attach(recorder)
        bus.detach(recorder)
        assert not bus.instrumented
        bus.fire_access(0, 0x5000, 8, AccessKind.LOAD)
        assert recorder.trace.access_count == 0

    def test_detach_unattached_is_noop(self):
        """Regression: detaching a never-attached (or already detached)
        sink must not raise -- session finish() paths may detach twice."""
        bus = ProbeBus()
        recorder = TraceRecorder()
        bus.detach(recorder)  # never attached
        bus.attach(recorder)
        bus.detach(recorder)
        bus.detach(recorder)  # second detach
        assert not bus.instrumented

    def test_recorder_wraps_existing_trace(self):
        trace = Trace()
        recorder = TraceRecorder(trace)
        recorder.on_alloc(0x1000, 8, "s", None)
        assert len(trace) == 1


class TestLayoutKnobs:
    def test_allocator_policy_changes_heap_addresses(self):
        def addresses(policy):
            process = Process(allocator=policy)
            out = []
            a = process.malloc("s", 100)
            out.append(a)
            process.free(a)
            out.append(process.malloc("s", 40))
            out.append(process.malloc("s", 100))
            return out

        assert addresses("bump") != addresses("first-fit")

    def test_probe_padding_changes_static_addresses(self):
        plain = Process()
        plain.declare_static("t", 64)
        padded = Process(probe_padding=1 << 16)
        padded.declare_static("t", 64)
        assert plain.static("t").address != padded.static("t").address

    def test_os_offset_changes_everything(self):
        a = Process()
        b = Process(os_offset=1 << 20)
        assert a.malloc("s", 8) != b.malloc("s", 8)
