"""Shared SARIF/JSON/text reporting used by repro-lint and mircheck."""

import json

from repro.lang.analysis.diagnostics import CODES as MIR_CODES
from repro.selfcheck.findings import CODES, Finding
from repro.selfcheck.reporting import (
    SARIF_VERSION,
    render_sarif,
    render_text,
    to_sarif,
)


def sample_records():
    finding = Finding(
        code="RL101",
        path="src/repro/store/cache.py",
        line=42,
        column=8,
        message="unguarded mutation of self.hits",
        symbol="LRUCache.get",
        detail="self.hits",
    )
    warning = Finding(
        code="RL102",
        path="src/repro/store/cache.py",
        line=57,
        column=0,
        message="torn read of hits/misses",
        symbol="LRUCache.hit_rate",
        detail="hits,misses",
    )
    return [finding.to_dict(), warning.to_dict()]


class TestSarifStructure:
    def test_skeleton(self):
        log = to_sarif(sample_records(), "reprolint", CODES)
        assert log["version"] == SARIF_VERSION
        assert log["$schema"].endswith("sarif-schema-2.1.0.json")
        (run,) = log["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "reprolint"
        assert len(driver["rules"]) == len(CODES)
        assert len(run["results"]) == 2

    def test_level_mapping_follows_severity(self):
        results = to_sarif(sample_records(), "reprolint", CODES)["runs"][0][
            "results"
        ]
        assert results[0]["level"] == "error"  # RL101 is an ERROR
        assert results[1]["level"] == "warning"  # RL102 is a WARNING

    def test_columns_are_one_based(self):
        results = to_sarif(sample_records(), "reprolint", CODES)["runs"][0][
            "results"
        ]
        region = results[0]["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 42
        assert region["startColumn"] == 9  # ast column 8 -> SARIF 9
        # column 0 still produces a legal (>=1) startColumn
        region = results[1]["locations"][0]["physicalLocation"]["region"]
        assert region["startColumn"] == 1

    def test_fingerprints_and_rule_index(self):
        log = to_sarif(sample_records(), "reprolint", CODES)
        (run,) = log["runs"]
        rules = run["tool"]["driver"]["rules"]
        for result in run["results"]:
            assert result["partialFingerprints"]["stableFinding/v1"]
            assert rules[result["ruleIndex"]]["id"] == result["ruleId"]

    def test_render_sarif_is_valid_json(self):
        log = json.loads(render_sarif(sample_records(), "reprolint", CODES))
        assert log["runs"][0]["results"]

    def test_mircheck_records_share_the_emitter(self):
        # repro-profile check --sarif feeds MIR diagnostics through the
        # same to_sarif; its rule table must round-trip identically
        record = {
            "code": "MIR101",
            "severity": MIR_CODES["MIR101"][0],
            "path": "examples/programs/defects_heap.mir",
            "line": 7,
            "column": 2,
            "message": "use of freed object",
        }
        log = to_sarif([record], "mircheck", MIR_CODES)
        (run,) = log["runs"]
        assert run["tool"]["driver"]["name"] == "mircheck"
        assert len(run["tool"]["driver"]["rules"]) == len(MIR_CODES)
        (result,) = run["results"]
        assert result["ruleId"] == "MIR101"
        # no fingerprint on MIR diagnostics: key must be absent, not null
        assert "partialFingerprints" not in result


class TestTextRendering:
    def test_text_matches_finding_render(self):
        records = sample_records()
        text = render_text(records)
        assert (
            "src/repro/store/cache.py:42:8: error: "
            "unguarded mutation of self.hits [RL101]" in text
        )


class TestFingerprintStability:
    def test_fingerprint_ignores_line_churn(self):
        one = Finding(
            code="RL101", path="a.py", line=10, column=0,
            message="m", symbol="C.f", detail="self.x",
        )
        two = Finding(
            code="RL101", path="a.py", line=99, column=4,
            message="m", symbol="C.f", detail="self.x",
        )
        assert one.fingerprint == two.fingerprint

    def test_fingerprint_varies_by_detail(self):
        one = Finding(
            code="RL101", path="a.py", line=10, column=0,
            message="m", symbol="C.f", detail="self.x",
        )
        two = Finding(
            code="RL101", path="a.py", line=10, column=0,
            message="m", symbol="C.f", detail="self.y",
        )
        assert one.fingerprint != two.fingerprint
