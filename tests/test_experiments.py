"""Smoke tests for the experiment harness (small scale, two benchmarks).

The benches regenerate the full figures; these tests assert the harness
machinery works and the *shape* properties hold on a reduced suite.
"""

import json

import pytest

from repro.experiments import fig5, fig6, fig7, fig8, fig9, table1
from repro.experiments.context import SuiteContext
from repro.experiments.runner import main as runner_main


@pytest.fixture(scope="module")
def context():
    return SuiteContext(scale=0.12, benchmarks=("gzip", "twolf"))


class TestContextCaching:
    def test_traces_cached(self, context):
        assert context.trace("gzip") is context.trace("gzip")

    def test_profiles_cached(self, context):
        assert context.leap("gzip") is context.leap("gzip")
        assert context.whomp("gzip") is context.whomp("gzip")


class TestFig5(object):
    def test_rows_and_average(self, context):
        results = fig5.run(context)
        assert len(results["rows"]) == 2
        for row in results["rows"]:
            assert row["omsg_bytes"] > 0 and row["rasg_bytes"] > 0
        assert -1.0 < results["average_improvement"] < 1.0
        assert "improvement" in fig5.render(results)

    def test_omsg_wins_on_average(self, context):
        results = fig5.run(context)
        assert results["average_improvement"] > 0


class TestFig6and7:
    def test_leap_distribution_shape(self, context):
        results = fig6.run(context)
        average = results["average"]
        # sharply peaked at zero error
        assert average.exactly_correct() > 0.3
        assert "Figure 6" in fig6.render(results)

    def test_connors_never_overestimates(self, context):
        results = fig7.run(context)
        assert results["never_overestimates"]
        assert "Figure 7" in fig7.render(results)


class TestFig8:
    def test_leap_beats_connors(self, context):
        results = fig8.run(context)
        assert results["leap_within_10"] >= results["connors_within_10"]
        assert "improvement" in fig8.render(results)


class TestFig9:
    def test_scores_computed(self, context):
        results = fig9.run(context)
        assert results["average_score"] is not None
        assert 0.0 <= results["average_score"] <= 1.0
        for row in results["rows"]:
            assert row["correct"] <= row["real"]
        assert "Figure 9" in fig9.render(results)


class TestTable1:
    def test_rows_without_speed(self, context):
        results = table1.run(context, measure_speed=False)
        for row in results["rows"]:
            assert row["compression"] > 1
            assert 0 <= row["accesses_captured"] <= 1
            assert 0 <= row["instructions_captured"] <= 1
            assert row["dilation"] is None
        assert "Table 1" in table1.render(results)

    def test_dilation_measurable(self, context):
        dilation = table1.measure_dilation(context, "gzip")
        assert dilation > 1.0  # instrumentation always costs something


class TestRunnerCli:
    def test_single_experiment(self, capsys, tmp_path):
        json_path = tmp_path / "results.json"
        code = runner_main(
            ["fig5", "--scale", "0.05", "--json", str(json_path)]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "Figure 5" in output
        data = json.loads(json_path.read_text())
        assert "fig5" in data

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            runner_main(["fig99"])


class TestFig3:
    def test_table_structure(self):
        from repro.experiments import fig3

        results = fig3.run()
        assert results["program_result"] == sum(range(6))
        assert len(results["rows"]) == 12
        # alternating data/next offsets, descending serials
        offsets = [row["tuple"][3] for row in results["rows"]]
        assert offsets == [0, 16] * 6
        objects = [row["tuple"][2] for row in results["rows"]]
        assert objects == sorted(objects, reverse=True)
        rendered = fig3.render(results)
        assert "horizontal decomposition" in rendered
        assert "vertical decomposition" in rendered

    def test_vertical_substreams_are_per_instruction(self):
        from repro.experiments import fig3

        results = fig3.run()
        assert len(results["vertical"]) == 2
        for triples in results["vertical"].values():
            offsets = {offset for __, offset, __t in triples}
            assert len(offsets) == 1  # each instruction has one offset


class TestJsonSanitization:
    """``--json`` output must be valid JSON even when results carry
    non-finite floats (``json.dump`` would happily emit bare ``NaN`` /
    ``Infinity`` literals, which no strict parser accepts)."""

    def test_non_finite_floats_become_null(self):
        from repro.experiments.runner import _jsonable

        crafted = {
            "nan": float("nan"),
            "inf": float("inf"),
            "ninf": float("-inf"),
            "nested": [1.5, float("nan"), {"deep": float("inf")}],
            "fine": 2.5,
        }
        cleaned = _jsonable(crafted)
        assert cleaned["nan"] is None
        assert cleaned["inf"] is None
        assert cleaned["ninf"] is None
        assert cleaned["nested"] == [1.5, None, {"deep": None}]
        assert cleaned["fine"] == 2.5
        # the result must survive a strict round trip
        json.loads(json.dumps(cleaned, allow_nan=False))


class TestRunnerParallelSmoke:
    """Tier-1 smoke: ``fig5 --jobs 2`` end-to-end must produce exactly
    the JSON of ``--jobs 1`` (minus wall-clock timings)."""

    @staticmethod
    def _strip_timings(payload):
        return {
            name: record["results"] for name, record in payload.items()
        }

    def test_fig5_jobs2_matches_serial(self, tmp_path, capsys):
        serial_path = tmp_path / "serial.json"
        parallel_path = tmp_path / "parallel.json"
        # --jobs 2 with a single experiment exercises the jobs plumbing
        # plus the profiler-level fan-out fallback decisions end-to-end.
        assert runner_main(
            ["fig5", "--scale", "0.1", "--jobs", "1", "--json", str(serial_path)]
        ) == 0
        assert runner_main(
            ["fig5", "fig9", "--scale", "0.1", "--jobs", "2",
             "--json", str(parallel_path)]
        ) == 0
        capsys.readouterr()
        serial = self._strip_timings(json.loads(serial_path.read_text()))
        parallel = self._strip_timings(json.loads(parallel_path.read_text()))
        assert parallel["fig5"] == serial["fig5"]
