"""Shared result rendering: text, JSON, and SARIF 2.1.0.

Both static-analysis front ends -- ``repro-lint`` (REPROLINT, this
package) and ``repro-profile check`` (MIRCHECK, the MIR verifier) --
funnel their findings through the neutral *record* shape defined here
so SARIF emission lives in exactly one place:

``{"code", "severity", "path", "line", "column", "message",
"fingerprint"?, "title"?, "symbol"?, "detail"?}``

``line`` is 1-based and ``column`` 0-based (the :mod:`ast` convention);
SARIF regions are emitted 1-based as the spec requires.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Tuple

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {"error": "error", "warning": "warning", "note": "note"}


def render_text(records: Iterable[dict]) -> str:
    lines = [
        f"{r['path']}:{r['line']}:{r['column']}: "
        f"{r['severity']}: {r['message']} [{r['code']}]"
        for r in records
    ]
    return "\n".join(lines)


def render_json(
    records: List[dict], tool_name: str, extra: Optional[dict] = None
) -> str:
    payload = {"tool": tool_name, "findings": records}
    if extra:
        payload.update(extra)
    return json.dumps(payload, indent=2, sort_keys=True)


def to_sarif(
    records: List[dict],
    tool_name: str,
    rules: Dict[str, Tuple[str, str]],
    tool_version: str = "1.0.0",
) -> dict:
    """A SARIF 2.1.0 log for ``records``.

    ``rules`` maps every known code to ``(severity, title)`` --
    REPROLINT passes its code registry, MIRCHECK its MIR1xx table --
    and becomes the driver's rule metadata, so viewers can show titles
    for codes with no findings in this run.
    """
    rule_objects = [
        {
            "id": code,
            "name": code,
            "shortDescription": {"text": title},
            "defaultConfiguration": {
                "level": _LEVELS.get(severity, "error")
            },
        }
        for code, (severity, title) in sorted(rules.items())
    ]
    rule_index = {code: i for i, code in enumerate(sorted(rules))}
    results = []
    for record in records:
        result = {
            "ruleId": record["code"],
            "level": _LEVELS.get(record.get("severity", "error"), "error"),
            "message": {"text": record["message"]},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": record["path"].replace("\\", "/"),
                        },
                        "region": {
                            "startLine": max(1, int(record["line"])),
                            "startColumn": int(record["column"]) + 1,
                        },
                    }
                }
            ],
        }
        if record["code"] in rule_index:
            result["ruleIndex"] = rule_index[record["code"]]
        if record.get("fingerprint"):
            result["partialFingerprints"] = {
                "stableFinding/v1": record["fingerprint"]
            }
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "version": tool_version,
                        "informationUri": (
                            "https://example.invalid/repro/selfcheck"
                        ),
                        "rules": rule_objects,
                    }
                },
                "results": results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }


def render_sarif(
    records: List[dict],
    tool_name: str,
    rules: Dict[str, Tuple[str, str]],
    tool_version: str = "1.0.0",
) -> str:
    return json.dumps(
        to_sarif(records, tool_name, rules, tool_version), indent=2
    )
