"""Set-associative cache simulator.

The paper's profilers exist to feed feedback-directed memory
optimization (FDMO): "memory profiles ... guide memory optimizations in
an aggressively optimizing compiler".  To *evaluate* the optimizations
built on the profiles (object clustering, field reordering, stride
prefetching -- :mod:`repro.postprocess`), the repository needs a memory
system to measure them against; this module provides it.

:class:`SetAssociativeCache` models one cache level with true LRU
replacement; :class:`CacheHierarchy` stacks levels.  The simulator is
driven by raw address streams (optionally with prefetch hints), so
layouts proposed by the optimizers can be compared like-for-like: same
logical access sequence, different address assignment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    size_bytes: int = 32 * 1024
    line_bytes: int = 64
    associativity: int = 4

    def __post_init__(self) -> None:
        if self.line_bytes <= 0 or self.line_bytes & (self.line_bytes - 1):
            raise ValueError("line size must be a positive power of two")
        if self.associativity < 1:
            raise ValueError("associativity must be >= 1")
        if self.size_bytes % (self.line_bytes * self.associativity):
            raise ValueError("size must be a multiple of line * associativity")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.associativity)


@dataclass
class CacheStats:
    """Hit/miss accounting for one simulation."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    prefetches: int = 0
    prefetch_hits: int = 0  # demand hits on prefetched lines

    @property
    def miss_rate(self) -> float:
        if not self.accesses:
            return 0.0
        return self.misses / self.accesses

    @property
    def hit_rate(self) -> float:
        return 1.0 - self.miss_rate


class SetAssociativeCache:
    """One cache level with true-LRU replacement.

    >>> cache = SetAssociativeCache(CacheConfig(1024, 64, 2))
    >>> cache.access(0); cache.access(0)
    False
    True
    """

    def __init__(self, config: CacheConfig = CacheConfig()) -> None:
        self.config = config
        # per-set list of tags, most recently used last
        self._sets: List[List[int]] = [[] for __ in range(config.num_sets)]
        # tags brought in by prefetch and not yet demand-hit
        self._prefetched: set = set()
        self.stats = CacheStats()

    def _locate(self, address: int) -> Tuple[int, int]:
        line = address // self.config.line_bytes
        return line % self.config.num_sets, line

    def access(self, address: int) -> bool:
        """Demand access; returns True on hit."""
        set_index, tag = self._locate(address)
        ways = self._sets[set_index]
        self.stats.accesses += 1
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)
            self.stats.hits += 1
            if tag in self._prefetched:
                self._prefetched.discard(tag)
                self.stats.prefetch_hits += 1
            return True
        self.stats.misses += 1
        self._fill(set_index, ways, tag)
        return False

    def prefetch(self, address: int) -> None:
        """Bring a line in without counting a demand access."""
        set_index, tag = self._locate(address)
        ways = self._sets[set_index]
        self.stats.prefetches += 1
        if tag in ways:
            return
        self._fill(set_index, ways, tag)
        self._prefetched.add(tag)

    def _fill(self, set_index: int, ways: List[int], tag: int) -> None:
        if len(ways) >= self.config.associativity:
            victim = ways.pop(0)
            self._prefetched.discard(victim)
        ways.append(tag)

    def reset(self) -> None:
        self._sets = [[] for __ in range(self.config.num_sets)]
        self._prefetched = set()
        self.stats = CacheStats()


class CacheHierarchy:
    """A stack of cache levels (L1 closest to the processor).

    A demand access probes levels in order until one hits; misses fill
    every level on the way back (inclusive hierarchy).
    """

    def __init__(self, configs: Sequence[CacheConfig]) -> None:
        if not configs:
            raise ValueError("need at least one level")
        self.levels = [SetAssociativeCache(config) for config in configs]

    def access(self, address: int) -> int:
        """Returns the level index that hit, or ``len(levels)`` for a
        miss to memory."""
        for index, level in enumerate(self.levels):
            if level.access(address):
                # fill the faster levels above
                for above in self.levels[:index]:
                    above_set, tag = above._locate(address)
                    if tag not in above._sets[above_set]:
                        above._fill(above_set, above._sets[above_set], tag)
                return index
        return len(self.levels)

    @property
    def l1(self) -> SetAssociativeCache:
        return self.levels[0]


def simulate(
    addresses: Iterable[int],
    config: CacheConfig = CacheConfig(),
    prefetch_for: Optional[dict] = None,
    instruction_ids: Optional[Sequence[int]] = None,
    prefetch_distance: int = 4,
) -> CacheStats:
    """Run an address stream through one cache level.

    ``prefetch_for`` maps instruction ids to their dominant stride; when
    given (with the parallel ``instruction_ids`` sequence), each access
    by such an instruction also prefetches ``address + distance*stride``
    -- the stride-based prefetching of the paper's second LEAP
    application.
    """
    cache = SetAssociativeCache(config)
    if prefetch_for is None:
        for address in addresses:
            cache.access(address)
        return cache.stats
    if instruction_ids is None:
        raise ValueError("prefetching needs the instruction id stream")
    for address, instruction in zip(addresses, instruction_ids):
        cache.access(address)
        stride = prefetch_for.get(instruction)
        if stride:
            cache.prefetch(address + prefetch_distance * stride)
    return cache.stats


@dataclass
class SimulationComparison:
    """Before/after miss rates for a layout or prefetch optimization."""

    baseline: CacheStats
    optimized: CacheStats
    label: str = ""
    extra: dict = field(default_factory=dict)

    @property
    def miss_reduction(self) -> float:
        """Relative reduction of the miss rate (1.0 = all misses gone)."""
        if self.baseline.miss_rate == 0:
            return 0.0
        return 1.0 - self.optimized.miss_rate / self.baseline.miss_rate
