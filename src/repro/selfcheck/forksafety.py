"""Fork-safety checking for pool worker functions (RL121-RL125).

The parallel layer runs workers in fork-based process pools: the
worker function is pickled *by reference* (module + qualname), so it
must be a module-level function, and everything it touches in the
child is a copy-on-write snapshot of the parent.  A captured
``threading.Lock`` may be snapshotted in the locked state and deadlock
the child forever; a captured socket or open file shares an fd and
interleaves writes; a mutated module-global silently diverges between
parent and children; a :class:`TraceContext` activation left open in
the child corrupts the parent's thread-local stack expectations.

Workers are found two ways: every module-level function of a module
marked ``# repro: workers``, and any same-module function passed by
name into a pool-style dispatch (``pool.map(worker, ...)``).  Lambdas
and nested functions at a dispatch site are convicted outright
(RL121): they do not survive pickling-by-reference.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.selfcheck.findings import FindingSink
from repro.selfcheck.loader import SourceModule, dotted_name

#: pool-style dispatch methods whose first argument crosses the fork
_DISPATCH_METHODS = frozenset(
    {
        "map",
        "imap",
        "imap_unordered",
        "starmap",
        "map_outcomes",
        "apply_async",
        "submit",
    }
)

#: constructors whose product must not cross a fork boundary
_UNSHARABLE_CONSTRUCTORS = {
    "threading.Lock": "a lock",
    "threading.RLock": "a lock",
    "threading.Condition": "a condition variable",
    "threading.Semaphore": "a semaphore",
    "threading.BoundedSemaphore": "a semaphore",
    "socket.socket": "a socket",
    "open": "an open file",
    "os.fdopen": "an open file",
}


def _unsharable_kind(value: ast.AST) -> Optional[str]:
    if not isinstance(value, ast.Call):
        return None
    name = dotted_name(value.func)
    if name is None:
        return None
    return _UNSHARABLE_CONSTRUCTORS.get(name)


def _module_globals(module: SourceModule) -> Dict[str, str]:
    """Module-level name -> unsharable kind, for globals a worker must
    not capture."""
    out: Dict[str, str] = {}
    for node in module.tree.body:
        if isinstance(node, ast.Assign):
            kind = _unsharable_kind(node.value)
            if kind is None:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    out[target.id] = kind
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            kind = _unsharable_kind(node.value)
            if kind is not None and isinstance(node.target, ast.Name):
                out[node.target.id] = kind
    return out


def _dispatch_first_arg(node: ast.Call) -> Optional[ast.AST]:
    if not isinstance(node.func, ast.Attribute):
        return None
    if node.func.attr not in _DISPATCH_METHODS:
        return None
    if not node.args:
        return None
    return node.args[0]


def _worker_functions(module: SourceModule) -> Dict[str, ast.FunctionDef]:
    """Module-level functions that execute on the far side of a fork."""
    top_level: Dict[str, ast.FunctionDef] = {
        node.name: node
        for node in module.tree.body
        if isinstance(node, ast.FunctionDef)
    }
    if "workers" in module.markers:
        return top_level
    dispatched: Dict[str, ast.FunctionDef] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            first = _dispatch_first_arg(node)
            if isinstance(first, ast.Name) and first.id in top_level:
                dispatched[first.id] = top_level[first.id]
    return dispatched


def check_module_forksafety(
    module: SourceModule, sink: FindingSink
) -> None:
    _check_dispatch_sites(module, sink)
    globals_at_risk = _module_globals(module)
    for name, function in sorted(_worker_functions(module).items()):
        _check_worker(module, function, globals_at_risk, sink)


def _check_dispatch_sites(module: SourceModule, sink: FindingSink) -> None:
    """RL121: lambdas and nested defs handed to a pool dispatch."""

    def handle_call(node: ast.Call, scope: str, nested: Set[str]) -> None:
        first = _dispatch_first_arg(node)
        if first is None:
            return
        if isinstance(first, ast.Lambda):
            sink.report(
                "RL121",
                first.lineno,
                first.col_offset,
                "lambda passed across the fork boundary: workers are "
                "pickled by reference and must be module-level functions",
                symbol=scope,
                detail="lambda",
            )
        elif isinstance(first, ast.Name) and first.id in nested:
            sink.report(
                "RL121",
                first.lineno,
                first.col_offset,
                f"nested function {first.id!r} passed across the fork "
                f"boundary: workers are pickled by reference and must be "
                f"module-level functions",
                symbol=scope,
                detail=first.id,
            )

    def visit(node: ast.AST, scope: str, nested: Set[str]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child_nested = {
                    inner.name
                    for inner in ast.walk(child)
                    if isinstance(
                        inner, (ast.FunctionDef, ast.AsyncFunctionDef)
                    )
                    and inner is not child
                }
                visit(child, child.name, child_nested)
                continue
            if isinstance(child, ast.Call):
                handle_call(child, scope, nested)
            visit(child, scope, nested)

    visit(module.tree, "<module>", set())


def _check_worker(
    module: SourceModule,
    function: ast.FunctionDef,
    globals_at_risk: Dict[str, str],
    sink: FindingSink,
) -> None:
    # RL123: unsharable state constructed in a default argument is
    # evaluated once in the parent and snapshotted into every child
    defaults: List[ast.AST] = list(function.args.defaults) + [
        d for d in function.args.kw_defaults if d is not None
    ]
    for default in defaults:
        kind = _unsharable_kind(default)
        if kind is not None:
            sink.report(
                "RL123",
                default.lineno,
                default.col_offset,
                f"worker {function.name!r} default argument constructs "
                f"{kind} in the parent process; create it inside the "
                f"worker body instead",
                symbol=function.name,
                detail=dotted_name(default.func) or "default",
            )

    local_names = _assigned_names(function)
    reported_globals: Set[str] = set()
    # activations scoped by `with activate(...)` or registered on an
    # ExitStack via `stack.enter_context(activate(...))` are exempt:
    # both guarantee the pop on error
    with_items: Set[int] = set()
    for node in ast.walk(function):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                with_items.add(id(item.context_expr))
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "enter_context"
            and node.args
        ):
            with_items.add(id(node.args[0]))
    for node in ast.walk(function):
        # RL124: explicit global mutation diverges parent and children
        if isinstance(node, ast.Global):
            sink.report(
                "RL124",
                node.lineno,
                node.col_offset,
                f"worker {function.name!r} declares "
                f"'global {', '.join(node.names)}': mutations made after "
                f"the fork never reach the parent or sibling workers",
                symbol=function.name,
                detail=",".join(node.names),
            )
        # RL122: references to module globals holding locks/files/sockets
        if (
            isinstance(node, ast.Name)
            and isinstance(node.ctx, ast.Load)
            and node.id in globals_at_risk
            and node.id not in local_names
            and node.id not in reported_globals
        ):
            reported_globals.add(node.id)
            sink.report(
                "RL122",
                node.lineno,
                node.col_offset,
                f"worker {function.name!r} captures module-global "
                f"{node.id!r} ({globals_at_risk[node.id]}): the fork "
                f"snapshots it in an unknown state",
                symbol=function.name,
                detail=node.id,
            )
        # RL125: a trace activation opened without `with` never pops the
        # thread-local stack if the worker raises
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if (
                name is not None
                and name.rsplit(".", 1)[-1] == "activate"
                and id(node) not in with_items
            ):
                sink.report(
                    "RL125",
                    node.lineno,
                    node.col_offset,
                    f"worker {function.name!r} opens a trace activation "
                    f"outside a 'with' block: the child leaks a live "
                    f"context stack on error",
                    symbol=function.name,
                    detail=name,
                )


def _assigned_names(function: ast.FunctionDef) -> Set[str]:
    names: Set[str] = set()
    for arg in (
        function.args.args
        + function.args.posonlyargs
        + function.args.kwonlyargs
    ):
        names.add(arg.arg)
    if function.args.vararg is not None:
        names.add(function.args.vararg.arg)
    if function.args.kwarg is not None:
        names.add(function.args.kwarg.arg)
    for node in ast.walk(function):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            names.add(node.id)
    return names
