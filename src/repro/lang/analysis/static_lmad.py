"""Static LMAD inference: predict LEAP's descriptors from source alone.

The dynamic LEAP profiler observes ``(object-serial, offset, time)``
triples per static instruction and compresses them into LMADs.  This
module computes the *predicted* ``(object-serial, offset)`` projection
of those streams without running the program: a symbolic executor walks
the AST from the entry function, carrying

* integer values as :class:`~repro.lang.analysis.affine.Affine` forms
  over normalized loop counters (one fresh symbol per recognized
  counted loop),
* pointers as ``(allocation site, instance#, offset)`` with the
  instance number and offset affine in the same symbols.

Per-site allocation counters reproduce the object-manager's per-group
serial numbering (serials are assigned in allocation order within a
group), so a heap access whose pointer is statically tracked yields the
exact ``(serial, offset)`` points the profiler will observe.

Counted ``for`` loops execute their body **once** symbolically: the
induction variable becomes ``init + step*s`` for a fresh symbol ``s``
with a known trip count, and each access recorded inside gains an LMAD
dimension ``(stride = d offset/d s, count = trips)``.  A havoc pre-pass
detects loop-carried variables (anything whose value after one
iteration differs from its entry value) and forgets them, so only
genuinely affine state survives.  Everything the executor cannot prove
-- pointer-chasing loops, data-dependent branches, recursion -- is
recorded as *imprecise* and classified ``unknown`` rather than guessed.

Classification per static instruction:

``proved-regular``
    every access is affine with statically known trip counts;
``proved-independent``
    regular, and the omega test proves its accesses disjoint from every
    other instruction's (no possible flow through memory);
``unknown``
    anything the executor could not track.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.omega import intersect_lmads
from repro.compression.lmad import LMAD, LMADCompressor, LMADProfileEntry
from repro.lang import ast
from repro.lang.analysis.affine import Affine
from repro.lang.parser import _ForWrapper, parse
from repro.lang.typesys import (
    ArrayType,
    IntType,
    PointerType,
    StructType,
    Type,
    TypeTable,
)

#: refuse to materialize predicted streams larger than this many points
DEFAULT_EXPANSION_CAP = 2_000_000

#: inline depth backstop; deeper nests are treated like recursion
MAX_INLINE_DEPTH = 64

PROVED_REGULAR = "proved-regular"
PROVED_INDEPENDENT = "proved-independent"
UNKNOWN_CLASS = "unknown"

#: both "regular" verdicts: independent is regular *plus* conflict-free
REGULAR_CLASSES = frozenset({PROVED_REGULAR, PROVED_INDEPENDENT})


# --------------------------------------------------------------------------
# symbolic values
# --------------------------------------------------------------------------


class _UnknownValue:
    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "UNKNOWN"


UNKNOWN = _UnknownValue()


@dataclass(frozen=True)
class SInt:
    """A statically-tracked integer (affine in loop symbols)."""

    value: Affine


@dataclass(frozen=True)
class StaticBase:
    """A global object; its group has exactly one object, serial 0."""

    name: str

    @property
    def site(self) -> str:
        return f"static:{self.name}"

    @property
    def instance(self) -> Optional[Affine]:
        return Affine.constant(0)


@dataclass(frozen=True)
class HeapBase:
    """One allocation site plus which allocation from it (the serial)."""

    site: str
    instance: Optional[Affine]


@dataclass(frozen=True)
class SPointer:
    """A tracked pointer: base object + byte offset + pointee type."""

    base: object  # StaticBase | HeapBase
    offset: Affine
    element: Type


# control-flow signals (mirroring the interpreter's)


class _SReturn(Exception):
    def __init__(self, value: object) -> None:
        self.value = value


class _SBreak(Exception):
    pass


class _SContinue(Exception):
    pass


# --------------------------------------------------------------------------
# access records
# --------------------------------------------------------------------------


@dataclass
class StaticAccess:
    """One symbolic execution of one syntactic load/store site."""

    node_key: int  # id() of the AST expression, shared with the interp
    function: str
    line: int
    verb: str  # "load" | "store"
    desc: str
    site: Optional[str]  # group label; None when the object is unknown
    instance: Optional[Affine]
    offset: Optional[Affine]
    dims: Tuple[Tuple[str, int], ...]  # (symbol, trips), outermost first
    precise: bool

    @property
    def name(self) -> str:
        """Instruction name without the dynamic ``#seq`` suffix."""
        return f"{self.function}:{self.line}:{self.verb}:{self.desc}"

    @property
    def count(self) -> int:
        total = 1
        for __, trips in self.dims:
            total *= trips
        return total

    def points(self) -> List[Tuple[int, int]]:
        """The predicted ``(serial, offset)`` stream, execution order."""
        if not self.precise or self.instance is None or self.offset is None:
            raise ValueError("cannot expand an imprecise access")
        symbols = [symbol for symbol, __ in self.dims]
        ranges = [range(trips) for __, trips in self.dims]
        instance_coeffs = [self.instance.coeff(s) for s in symbols]
        offset_coeffs = [self.offset.coeff(s) for s in symbols]
        base_instance = self.instance.const
        base_offset = self.offset.const
        out: List[Tuple[int, int]] = []
        for indices in itertools.product(*ranges):
            serial = base_instance + sum(
                c * k for c, k in zip(instance_coeffs, indices)
            )
            offset = base_offset + sum(
                c * k for c, k in zip(offset_coeffs, indices)
            )
            out.append((serial, offset))
        return out


@dataclass
class StaticInstruction:
    """Everything inferred about one static instruction."""

    node_key: int
    name: str  # fn:line:verb:desc (no #seq)
    function: str
    verb: str
    records: List[StaticAccess] = field(default_factory=list)
    classification: str = UNKNOWN_CLASS

    @property
    def precise(self) -> bool:
        return all(record.precise for record in self.records)

    @property
    def exec_count(self) -> int:
        return sum(record.count for record in self.records)

    @property
    def sites(self) -> List[str]:
        return sorted(
            {record.site for record in self.records if record.site is not None}
        )


# --------------------------------------------------------------------------
# result
# --------------------------------------------------------------------------


@dataclass
class StaticLmadResult:
    """Predicted access behaviour for one program + entry point."""

    program: ast.Program
    entry: str
    records: List[StaticAccess]
    instructions: Dict[int, StaticInstruction]
    tainted_functions: Set[str]
    expansion_cap: int = DEFAULT_EXPANSION_CAP

    # -- expansion / compression ----------------------------------------

    def points(self, node_key: int, site: str) -> List[Tuple[int, int]]:
        """Predicted ``(serial, offset)`` stream of one instruction on
        one object group, in execution order."""
        instruction = self.instructions[node_key]
        if not instruction.precise:
            raise ValueError(f"{instruction.name} is not statically known")
        if instruction.exec_count > self.expansion_cap:
            raise ValueError(
                f"{instruction.name} expands to {instruction.exec_count}"
                f" points (cap {self.expansion_cap})"
            )
        stream: List[Tuple[int, int]] = []
        for record in instruction.records:
            if record.site == site:
                stream.extend(record.points())
        return stream

    def compress(
        self, node_key: int, site: str, budget: int = 256
    ) -> LMADProfileEntry:
        """Canonical LMAD form of one predicted stream: expand, then
        run the profiler's own greedy compressor over the points."""
        compressor = LMADCompressor(dims=2, budget=budget)
        compressor.feed_all(self.points(node_key, site))
        return compressor.finish()

    # -- classification --------------------------------------------------

    def classify(self) -> Dict[int, str]:
        """Fill and return ``classification`` for every instruction."""
        expandable: Dict[int, bool] = {}
        for key, instruction in self.instructions.items():
            expandable[key] = (
                instruction.precise
                and instruction.exec_count <= self.expansion_cap
            )
            instruction.classification = (
                PROVED_REGULAR if expandable[key] else UNKNOWN_CLASS
            )
        conflicts = self.dependences()
        conflicted: Set[int] = set()
        for writer_key, reader_key, __ in conflicts:
            conflicted.add(writer_key)
            conflicted.add(reader_key)
        # Independence additionally needs the object to be free of
        # untracked accesses: an imprecise access (or any recursion)
        # could alias anything on the heap.
        hazy_sites: Set[str] = set()
        any_wild = bool(self.tainted_functions)
        for record in self.records:
            if not record.precise:
                if record.site is None:
                    any_wild = True
                else:
                    hazy_sites.add(record.site)
        for key, instruction in self.instructions.items():
            if not expandable[key] or key in conflicted:
                continue
            if any_wild and any(
                not site.startswith("static:") for site in instruction.sites
            ):
                continue
            if any(site in hazy_sites for site in instruction.sites):
                continue
            instruction.classification = PROVED_INDEPENDENT
        return {
            key: instruction.classification
            for key, instruction in self.instructions.items()
        }

    def dependences(
        self, budget: int = 1024
    ) -> List[Tuple[int, int, str]]:
        """Store/access conflicts proved possible by the omega test.

        Returns ``(writer node_key, reader node_key, site)`` for every
        pair of statically-known instructions whose predicted point sets
        intersect on the same object group (writer is a store; reader is
        any other instruction touching the same location).
        """
        usable = [
            instruction
            for instruction in self.instructions.values()
            if instruction.precise
            and instruction.exec_count <= self.expansion_cap
        ]
        by_site: Dict[str, List[StaticInstruction]] = {}
        for instruction in usable:
            for site in instruction.sites:
                by_site.setdefault(site, []).append(instruction)
        entries: Dict[Tuple[int, str], List[LMAD]] = {}

        def lmads(instruction: StaticInstruction, site: str) -> List[LMAD]:
            key = (instruction.node_key, site)
            if key not in entries:
                entry = self.compress(instruction.node_key, site, budget)
                entries[key] = list(entry.lmads)
            return entries[key]

        out: List[Tuple[int, int, str]] = []
        for site, members in sorted(by_site.items()):
            writers = [m for m in members if m.verb == "store"]
            for writer in writers:
                for reader in members:
                    if reader.node_key == writer.node_key:
                        continue
                    if self._intersects(lmads(writer, site), lmads(reader, site)):
                        out.append((writer.node_key, reader.node_key, site))
        return out

    @staticmethod
    def _intersects(writers: List[LMAD], readers: List[LMAD]) -> bool:
        for writer in writers:
            for reader in readers:
                solution = intersect_lmads(
                    writer, reader, equal_dims=(0, 1), time_dim=None
                )
                if not solution.is_empty:
                    return True
        return False


# --------------------------------------------------------------------------
# the symbolic executor
# --------------------------------------------------------------------------


def _describe(expr: ast.Expr) -> str:
    # Mirror of Interpreter._describe: instruction names must agree.
    if isinstance(expr, ast.FieldAccess):
        return ("->" if expr.through_pointer else ".") + expr.field_name
    if isinstance(expr, ast.Index):
        return "[]"
    if isinstance(expr, ast.VarRef):
        return expr.name
    return type(expr).__name__.lower()


def _assigned_names(statements) -> Set[str]:
    """Names (re)assigned anywhere in a statement subtree."""
    names: Set[str] = set()
    stack = list(statements)
    while stack:
        statement = stack.pop()
        if isinstance(statement, ast.VarDecl):
            names.add(statement.name)
        elif isinstance(statement, ast.Assign):
            if isinstance(statement.target, ast.VarRef):
                names.add(statement.target.name)
        elif isinstance(statement, ast.If):
            stack.extend(statement.then_body)
            stack.extend(statement.else_body)
        elif isinstance(statement, ast.While):
            stack.extend(statement.body)
            if statement.step is not None:
                stack.append(statement.step)
        elif isinstance(statement, _ForWrapper):
            stack.append(statement.init)
            stack.append(statement.loop)
    return names


class StaticLmadAnalyzer:
    """Symbolically execute a program and record predicted accesses."""

    def __init__(
        self,
        program: ast.Program,
        entry: str = "main",
        args: Tuple[int, ...] = (),
        expansion_cap: int = DEFAULT_EXPANSION_CAP,
    ) -> None:
        self.program = program
        self.entry = entry
        self.args = args
        self.expansion_cap = expansion_cap
        self.types = TypeTable(program)
        self.globals: Dict[str, Type] = {
            declaration.name: self.types.resolve(declaration.type_expr)
            for declaration in program.globals
        }
        self._records: List[StaticAccess] = []
        self._counters: Dict[str, Optional[Affine]] = {}
        #: static model of global *scalar* memory (ints and pointers);
        #: the simulated process zero-initializes statics, so absent
        #: entries read as the constant 0
        self._global_scalars: Dict[str, object] = {}
        self._loop_stack: List[Tuple[str, int]] = []
        self._imprecise = 0
        self._tainted: Set[str] = set()
        self._call_stack: List[str] = []
        self._symbols = 0

    # -- entry -----------------------------------------------------------

    def run(self) -> StaticLmadResult:
        function = self.program.function(self.entry)
        env: Dict[str, object] = {}
        for index, param in enumerate(function.params):
            if index < len(self.args):
                env[param.name] = SInt(Affine.constant(self.args[index]))
            else:
                env[param.name] = SInt(Affine.constant(0))
        self._call_stack.append(function.name)
        try:
            self._exec_block(function.body, env, function)
        except _SReturn:
            pass
        finally:
            self._call_stack.pop()
        return self._build_result()

    def _build_result(self) -> StaticLmadResult:
        instructions: Dict[int, StaticInstruction] = {}
        for record in self._records:
            if record.function in self._tainted:
                record.precise = False
            instruction = instructions.get(record.node_key)
            if instruction is None:
                instruction = StaticInstruction(
                    node_key=record.node_key,
                    name=record.name,
                    function=record.function,
                    verb=record.verb,
                )
                instructions[record.node_key] = instruction
            instruction.records.append(record)
        result = StaticLmadResult(
            program=self.program,
            entry=self.entry,
            records=self._records,
            instructions=instructions,
            tainted_functions=set(self._tainted),
            expansion_cap=self.expansion_cap,
        )
        result.classify()
        return result

    # -- helpers ---------------------------------------------------------

    def _fresh_symbol(self) -> str:
        self._symbols += 1
        return f"s{self._symbols}"

    def _concrete(self, value_type: Type) -> Type:
        if isinstance(value_type, StructType) and not value_type.fields:
            try:
                return self.types.struct(value_type.name)
            except Exception:
                return value_type
        return value_type

    def _element_type(self, aggregate: Type) -> Type:
        if isinstance(aggregate, ArrayType):
            return self._concrete(aggregate.element)
        return aggregate

    def _record(
        self,
        expr: ast.Expr,
        verb: str,
        function: ast.FunctionDecl,
        base: object,
        offset: Optional[Affine],
    ) -> None:
        site: Optional[str] = None
        instance: Optional[Affine] = None
        if isinstance(base, StaticBase):
            site = base.site
            instance = base.instance
        elif isinstance(base, HeapBase):
            site = base.site
            instance = base.instance
        precise = (
            self._imprecise == 0
            and site is not None
            and instance is not None
            and offset is not None
        )
        self._records.append(
            StaticAccess(
                node_key=id(expr),
                function=function.name,
                line=expr.line,
                verb=verb,
                desc=_describe(expr),
                site=site,
                instance=instance,
                offset=offset,
                dims=tuple(self._loop_stack),
                precise=precise,
            )
        )

    # -- statements ------------------------------------------------------

    def _exec_block(self, body, env, function) -> None:
        for statement in body:
            self._exec_stmt(statement, env, function)

    def _exec_stmt(self, statement, env, function) -> None:
        if isinstance(statement, ast.VarDecl):
            if statement.initializer is not None:
                env[statement.name] = self._eval(
                    statement.initializer, env, function
                )
            else:
                env[statement.name] = SInt(Affine.constant(0))
        elif isinstance(statement, ast.Assign):
            value = self._eval(statement.value, env, function)
            target = statement.target
            if isinstance(target, ast.VarRef) and target.name in env:
                env[target.name] = value
                return
            base, offset, __ = self._lvalue(target, env, function)
            self._record(target, "store", function, base, offset)
            self._note_store(base, offset, value)
        elif isinstance(statement, ast.ExprStmt):
            self._eval(statement.expr, env, function)
        elif isinstance(statement, ast.Delete):
            self._eval(statement.pointer, env, function)
        elif isinstance(statement, ast.If):
            self._exec_if(statement, env, function)
        elif isinstance(statement, ast.While):
            self._exec_while(statement, env, function)
        elif isinstance(statement, _ForWrapper):
            self._exec_stmt(statement.init, env, function)
            self._exec_stmt(statement.loop, env, function)
        elif isinstance(statement, ast.Return):
            if statement.value is None:
                raise _SReturn(SInt(Affine.constant(0)))
            raise _SReturn(self._eval(statement.value, env, function))
        elif isinstance(statement, ast.Break):
            raise _SBreak()
        elif isinstance(statement, ast.Continue):
            raise _SContinue()

    # -- if --------------------------------------------------------------

    def _exec_if(self, statement: ast.If, env, function) -> None:
        condition = self._eval(statement.condition, env, function)
        truth = self._truthiness(condition)
        if truth is not None:
            body = statement.then_body if truth else statement.else_body
            self._exec_block(body, env, function)
            return
        # Unknown condition: run both arms imprecisely and join.
        self._imprecise += 1
        counters_before = dict(self._counters)
        globals_before = dict(self._global_scalars)
        then_env = dict(env)
        then_signal: Optional[Exception] = None
        try:
            self._exec_block(statement.then_body, then_env, function)
        except (_SBreak, _SContinue, _SReturn) as signal:
            then_signal = signal
        counters_then = self._counters
        globals_then = self._global_scalars
        self._counters = dict(counters_before)
        self._global_scalars = dict(globals_before)
        else_env = dict(env)
        else_signal: Optional[Exception] = None
        try:
            self._exec_block(statement.else_body, else_env, function)
        except (_SBreak, _SContinue, _SReturn) as signal:
            else_signal = signal
        counters_else = self._counters
        globals_else = self._global_scalars
        self._imprecise -= 1

        if then_signal is not None and else_signal is not None:
            # Neither arm falls through; execution cannot continue here.
            self._counters = self._merge_tables(counters_then, counters_else)
            self._global_scalars = self._merge_tables(
                globals_then, globals_else, UNKNOWN
            )
            raise then_signal
        if then_signal is not None:
            # Only the else path continues past this statement.
            env.clear()
            env.update(else_env)
            self._counters = counters_else
            self._global_scalars = globals_else
            return
        if else_signal is not None:
            env.clear()
            env.update(then_env)
            self._counters = counters_then
            self._global_scalars = globals_then
            return

        merged: Dict[str, object] = {}
        for name in set(then_env) | set(else_env):
            a = then_env.get(name)
            b = else_env.get(name)
            merged[name] = a if a == b else UNKNOWN
        env.clear()
        env.update(merged)
        self._counters = self._merge_tables(counters_then, counters_else)
        self._global_scalars = self._merge_tables(
            globals_then, globals_else, UNKNOWN
        )

    @staticmethod
    def _merge_tables(a: Dict, b: Dict, bottom=None) -> Dict:
        merged: Dict = {}
        for key in set(a) | set(b):
            merged[key] = a.get(key) if a.get(key) == b.get(key) else bottom
        return merged

    def _note_store(
        self, base: object, offset: Optional[Affine], value: object
    ) -> None:
        """Keep the global-scalar model in sync with a memory store."""
        if isinstance(base, StaticBase):
            name = base.name
            if isinstance(self.globals.get(name), (StructType, ArrayType)):
                return  # aggregate interiors are not value-tracked
            if (
                self._imprecise == 0
                and offset is not None
                and offset.is_const
                and offset.const == 0
            ):
                self._global_scalars[name] = value
            else:
                self._global_scalars[name] = UNKNOWN
        elif base is None:
            # A store through an untracked pointer could alias any
            # global scalar (e.g. via AddressOf).
            self._havoc_globals()

    def _havoc_globals(self) -> None:
        for name, declared in self.globals.items():
            if not isinstance(declared, (StructType, ArrayType)):
                self._global_scalars[name] = UNKNOWN

    def _truthiness(self, value: object) -> Optional[bool]:
        if isinstance(value, SInt) and value.value.is_const:
            return value.value.const != 0
        if isinstance(value, SPointer):
            # Simulated object addresses are never zero.
            return True
        return None

    # -- loops -----------------------------------------------------------

    def _exec_while(self, statement: ast.While, env, function) -> None:
        plan = self._recognize_loop(statement, env, function)
        if plan is None:
            self._exec_unknown_loop(statement, env, function)
            return
        ivar, init, step, trips, bound_globals = plan
        if trips == 0:
            # The condition is still evaluated once (and may probe
            # global scalars); the body never runs.
            self._eval(statement.condition, env, function)
            return
        symbol = self._fresh_symbol()
        induction = SInt(Affine.symbol(symbol, step).add_const(init))

        def run_body_once(body_env) -> None:
            try:
                self._exec_block(statement.body, body_env, function)
            except _SContinue:
                pass
            if statement.step is not None:
                self._exec_stmt(statement.step, body_env, function)

        # Havoc pre-pass: find loop-carried state.
        records_mark = len(self._records)
        counters_before = dict(self._counters)
        globals_before = dict(self._global_scalars)
        probe_env = dict(env)
        probe_env[ivar] = induction
        baseline = dict(probe_env)
        self._loop_stack.append((symbol, trips))
        try:
            run_body_once(probe_env)
            clean = True
        except (_SBreak, _SReturn):
            clean = False
        self._loop_stack.pop()
        del self._records[records_mark:]
        counters_after = self._counters
        globals_after = self._global_scalars
        # Restore *copies*: the real pass mutates the live tables, and
        # the exit seeding below must still see the pristine snapshots.
        self._counters = dict(counters_before)
        self._global_scalars = dict(globals_before)

        variant_globals = {
            name
            for name in set(globals_before) | set(globals_after)
            if globals_after.get(name) != globals_before.get(name)
        }
        if not clean or (bound_globals & variant_globals):
            # A break/return inside, or the loop rewrites its own
            # bound: the counted model does not hold.
            self._exec_unknown_loop(statement, env, function)
            return

        variant = {
            name
            for name in set(baseline) | set(probe_env)
            if name != ivar and probe_env.get(name) != baseline.get(name)
        }
        deltas: Dict[str, Optional[int]] = {}
        for site in set(counters_before) | set(counters_after):
            before = counters_before.get(site, Affine.constant(0))
            after = counters_after.get(site)
            if before is None or after is None:
                deltas[site] = None
            else:
                change = after.sub(before)
                deltas[site] = change.const if change.is_const else None

        # Real pass.
        env[ivar] = induction
        for name in variant:
            if name in env:
                env[name] = UNKNOWN
        for name in variant_globals:
            self._global_scalars[name] = UNKNOWN
        for site, delta in deltas.items():
            base = counters_before.get(site, Affine.constant(0))
            if delta is None or base is None:
                self._counters[site] = None
            elif delta:
                self._counters[site] = base.add(Affine.symbol(symbol, delta))
        # The condition runs trips+1 times (the last check fails); its
        # probes get a count-trips+1 dimension over the same symbol.
        self._loop_stack.append((symbol, trips + 1))
        self._eval(statement.condition, env, function)
        self._loop_stack.pop()
        self._loop_stack.append((symbol, trips))
        try:
            run_body_once(env)
        except (_SBreak, _SReturn):
            # The probe pass was clean, so this only happens when a
            # havocked variable made a branch diverge; degrade safely.
            for name in list(env):
                env[name] = UNKNOWN
            self._havoc_globals()
            for record in self._records[records_mark:]:
                record.precise = False
        self._loop_stack.pop()

        env[ivar] = SInt(Affine.constant(init + step * trips))
        for name in variant:
            if name in env:
                env[name] = UNKNOWN
        for name in variant_globals:
            self._global_scalars[name] = UNKNOWN
        for site, delta in deltas.items():
            base = counters_before.get(site, Affine.constant(0))
            poisoned = (
                site in self._counters and self._counters[site] is None
            )
            if delta is None or base is None or poisoned:
                # Poisoned during the real pass (a havocked variable
                # steered an allocation branch): stay unknown.
                self._counters[site] = None
            elif delta:
                self._counters[site] = base.add_const(delta * trips)

    def _exec_unknown_loop(self, statement: ast.While, env, function) -> None:
        """A loop whose trip count is unknown: run the body once with
        every assigned variable forgotten, recording accesses as
        imprecise."""
        assigned = _assigned_names(statement.body)
        if statement.step is not None:
            assigned |= _assigned_names((statement.step,))
        for name in assigned:
            if name in env:
                env[name] = UNKNOWN
            elif name in self.globals:
                self._global_scalars[name] = UNKNOWN
        self._imprecise += 1
        try:
            self._eval(statement.condition, env, function)
            try:
                self._exec_block(statement.body, env, function)
            except (_SBreak, _SContinue):
                pass
            if statement.step is not None:
                self._exec_stmt(statement.step, env, function)
        finally:
            self._imprecise -= 1
        for name in assigned:
            if name in env:
                env[name] = UNKNOWN
            elif name in self.globals:
                self._global_scalars[name] = UNKNOWN

    def _recognize_loop(
        self, statement: ast.While, env, function
    ) -> Optional[Tuple[str, int, int, int, Set[str]]]:
        """Recognize ``for (i = K0; i REL K1; i = i + C)``.

        Returns ``(induction var, init, step, trips, bound globals)``
        or None.  The bound must fold to a constant over literals,
        locals, and global scalars, and the induction variable must not
        be written inside the body.  The returned global-name set lets
        the caller reject loops that rewrite their own bound.
        """
        step_stmt = statement.step
        if not isinstance(step_stmt, ast.Assign):
            return None
        if not isinstance(step_stmt.target, ast.VarRef):
            return None
        ivar = step_stmt.target.name
        if ivar not in env:
            return None
        increment = self._step_increment(step_stmt.value, ivar)
        if increment is None or increment == 0:
            return None
        if ivar in _assigned_names(statement.body):
            return None
        current = env.get(ivar)
        if not isinstance(current, SInt) or not current.value.is_const:
            return None
        init = current.value.const
        condition = statement.condition
        if not isinstance(condition, ast.Binary):
            return None
        op = condition.op
        if isinstance(condition.left, ast.VarRef) and condition.left.name == ivar:
            bound_expr = condition.right
        elif (
            isinstance(condition.right, ast.VarRef)
            and condition.right.name == ivar
        ):
            bound_expr = condition.left
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "!=": "!="}.get(op)
            if op is None:
                return None
        else:
            return None
        bound_globals = self._bound_reads(bound_expr, env)
        if bound_globals is None:
            return None
        # Probe-evaluate the bound without keeping its records: the
        # real pass re-evaluates the whole condition with the proper
        # trips+1 repetition dimension.
        records_mark = len(self._records)
        bound_value = self._eval(bound_expr, env, function)
        del self._records[records_mark:]
        if not isinstance(bound_value, SInt) or not bound_value.value.is_const:
            return None
        bound = bound_value.value.const
        trips = self._trip_count(op, init, bound, increment)
        if trips is None:
            return None
        return (ivar, init, increment, trips, bound_globals)

    @staticmethod
    def _step_increment(value: ast.Expr, ivar: str) -> Optional[int]:
        if not isinstance(value, ast.Binary) or value.op not in ("+", "-"):
            return None
        left, right = value.left, value.right
        if (
            isinstance(left, ast.VarRef)
            and left.name == ivar
            and isinstance(right, ast.IntLiteral)
        ):
            return right.value if value.op == "+" else -right.value
        if (
            value.op == "+"
            and isinstance(right, ast.VarRef)
            and right.name == ivar
            and isinstance(left, ast.IntLiteral)
        ):
            return left.value
        return None

    def _bound_reads(self, expr: ast.Expr, env) -> Optional[Set[str]]:
        """Which global scalars a loop bound reads, or None when the
        expression is not a pure arithmetic form over literals, locals,
        and global scalars (calls, dereferences, allocation...)."""
        if isinstance(expr, (ast.IntLiteral, ast.NullLiteral)):
            return set()
        if isinstance(expr, ast.VarRef):
            if expr.name in env:
                return set()
            declared = self.globals.get(expr.name)
            if declared is not None and not isinstance(
                declared, (StructType, ArrayType)
            ):
                return {expr.name}
            return None
        if isinstance(expr, ast.Unary):
            return self._bound_reads(expr.operand, env)
        if isinstance(expr, ast.Binary):
            left = self._bound_reads(expr.left, env)
            right = self._bound_reads(expr.right, env)
            if left is None or right is None:
                return None
            return left | right
        return None

    @staticmethod
    def _trip_count(
        op: str, init: int, bound: int, step: int
    ) -> Optional[int]:
        def ceil_div(a: int, b: int) -> int:
            return -(-a // b)

        if op == "<":
            if step <= 0:
                return 0 if init >= bound else None
            return max(0, ceil_div(bound - init, step))
        if op == "<=":
            if step <= 0:
                return 0 if init > bound else None
            return max(0, ceil_div(bound + 1 - init, step))
        if op == ">":
            if step >= 0:
                return 0 if init <= bound else None
            return max(0, ceil_div(init - bound, -step))
        if op == ">=":
            if step >= 0:
                return 0 if init < bound else None
            return max(0, ceil_div(init - (bound - 1), -step))
        if op == "!=":
            difference = bound - init
            if difference == 0:
                return 0
            if step != 0 and difference % step == 0 and difference // step > 0:
                return difference // step
            return None
        return None

    # -- expressions -----------------------------------------------------

    def _eval(self, expr: ast.Expr, env, function) -> object:
        if isinstance(expr, ast.IntLiteral):
            return SInt(Affine.constant(expr.value))
        if isinstance(expr, ast.NullLiteral):
            return SInt(Affine.constant(0))
        if isinstance(expr, ast.VarRef):
            return self._eval_varref(expr, env, function)
        if isinstance(expr, ast.Unary):
            operand = self._eval(expr.operand, env, function)
            if expr.op == "-" and isinstance(operand, SInt):
                return SInt(operand.value.neg())
            if expr.op == "!":
                truth = self._truthiness(operand)
                if truth is not None:
                    return SInt(Affine.constant(0 if truth else 1))
            return UNKNOWN
        if isinstance(expr, ast.Binary):
            return self._eval_binary(expr, env, function)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, env, function)
        if isinstance(expr, ast.New):
            return self._eval_new(expr, env, function)
        if isinstance(expr, (ast.FieldAccess, ast.Index)):
            base, offset, value_type = self._lvalue(expr, env, function)
            self._record(expr, "load", function, base, offset)
            if value_type is not None and isinstance(
                value_type, (StructType, ArrayType)
            ):
                if base is not None and offset is not None:
                    return SPointer(
                        base, offset, self._element_type(value_type)
                    )
            return UNKNOWN
        if isinstance(expr, ast.AddressOf):
            base, offset, value_type = self._lvalue(
                expr.target, env, function
            )
            if base is not None and offset is not None and value_type is not None:
                return SPointer(base, offset, value_type)
            return UNKNOWN
        return UNKNOWN

    def _eval_varref(self, expr: ast.VarRef, env, function) -> object:
        if expr.name in env:
            return env[expr.name]
        declared = self.globals.get(expr.name)
        if declared is None:
            return UNKNOWN
        if isinstance(declared, (StructType, ArrayType)):
            # Aggregates decay to their address without an access.
            return SPointer(
                StaticBase(expr.name),
                Affine.constant(0),
                self._element_type(declared),
            )
        # Global scalar: a profiled load of static:<name> offset 0.
        self._record(
            expr, "load", function, StaticBase(expr.name), Affine.constant(0)
        )
        return self._global_scalars.get(
            expr.name, SInt(Affine.constant(0))
        )

    def _eval_binary(self, expr: ast.Binary, env, function) -> object:
        op = expr.op
        if op in ("&&", "||"):
            left = self._eval(expr.left, env, function)
            truth = self._truthiness(left)
            if truth is not None:
                if op == "&&" and not truth:
                    return SInt(Affine.constant(0))
                if op == "||" and truth:
                    return SInt(Affine.constant(1))
                right = self._eval(expr.right, env, function)
                right_truth = self._truthiness(right)
                if right_truth is None:
                    return UNKNOWN
                return SInt(Affine.constant(1 if right_truth else 0))
            # Short-circuit on an unknown left: the right side runs on
            # some executions only.
            self._imprecise += 1
            try:
                self._eval(expr.right, env, function)
            finally:
                self._imprecise -= 1
            return UNKNOWN

        left = self._eval(expr.left, env, function)
        right = self._eval(expr.right, env, function)
        if op in ("==", "!="):
            return self._eval_equality(op, left, right)
        if isinstance(left, SInt) and isinstance(right, SInt):
            a, b = left.value, right.value
            if op == "+":
                return SInt(a.add(b))
            if op == "-":
                return SInt(a.sub(b))
            if op == "*":
                product = a.mul(b)
                return SInt(product) if product is not None else UNKNOWN
            if a.is_const and b.is_const:
                return self._fold_const(op, a.const, b.const)
            if op in ("<", "<=", ">", ">="):
                difference = a.sub(b)
                if difference.is_const:
                    value = difference.const
                    result = {
                        "<": value < 0,
                        "<=": value <= 0,
                        ">": value > 0,
                        ">=": value >= 0,
                    }[op]
                    return SInt(Affine.constant(1 if result else 0))
        return UNKNOWN

    def _eval_equality(self, op: str, left: object, right: object) -> object:
        equal: Optional[bool] = None
        if isinstance(left, SInt) and isinstance(right, SInt):
            difference = left.value.sub(right.value)
            if difference.is_const:
                equal = difference.const == 0
        elif isinstance(left, SPointer) and isinstance(right, SPointer):
            if left.base == right.base:
                difference = left.offset.sub(right.offset)
                if difference.is_const:
                    equal = difference.const == 0
            else:
                equal = False  # distinct objects never share addresses
        elif isinstance(left, SPointer) and isinstance(right, SInt):
            if right.value.is_const and right.value.const == 0:
                equal = False  # object addresses are never null
        elif isinstance(left, SInt) and isinstance(right, SPointer):
            if left.value.is_const and left.value.const == 0:
                equal = False
        if equal is None:
            return UNKNOWN
        if op == "!=":
            equal = not equal
        return SInt(Affine.constant(1 if equal else 0))

    @staticmethod
    def _fold_const(op: str, left: int, right: int) -> object:
        if op == "/":
            if right == 0:
                return UNKNOWN
            return SInt(Affine.constant(int(left / right)))
        if op == "%":
            if right == 0:
                return UNKNOWN
            return SInt(Affine.constant(left - int(left / right) * right))
        table = {
            "<": left < right,
            "<=": left <= right,
            ">": left > right,
            ">=": left >= right,
        }
        if op in table:
            return SInt(Affine.constant(1 if table[op] else 0))
        return UNKNOWN

    def _eval_call(self, expr: ast.Call, env, function) -> object:
        try:
            callee = self.program.function(expr.name)
        except KeyError:
            return UNKNOWN
        arguments = [
            self._eval(argument, env, function) for argument in expr.args
        ]
        if (
            expr.name in self._call_stack
            or len(self._call_stack) >= MAX_INLINE_DEPTH
        ):
            # Recursion: every instruction in the callee (and below) is
            # beyond static tracking, and it may write any global.
            self._taint(expr.name)
            self._havoc_globals()
            return UNKNOWN
        callee_env: Dict[str, object] = {}
        for index, param in enumerate(callee.params):
            callee_env[param.name] = (
                arguments[index] if index < len(arguments) else UNKNOWN
            )
        self._call_stack.append(expr.name)
        try:
            self._exec_block(callee.body, callee_env, callee)
        except _SReturn as signal:
            return signal.value
        finally:
            self._call_stack.pop()
        return SInt(Affine.constant(0))

    def _taint(self, name: str) -> None:
        """Mark ``name`` and everything it can call as unpredictable."""
        pending = [name]
        while pending:
            current = pending.pop()
            if current in self._tainted:
                continue
            self._tainted.add(current)
            try:
                callee = self.program.function(current)
            except KeyError:
                continue
            stack = list(callee.body)
            while stack:
                statement = stack.pop()
                if isinstance(statement, ast.If):
                    stack.extend(statement.then_body)
                    stack.extend(statement.else_body)
                elif isinstance(statement, ast.While):
                    stack.extend(statement.body)
                    if statement.step is not None:
                        stack.append(statement.step)
                elif isinstance(statement, _ForWrapper):
                    stack.extend((statement.init, statement.loop))
                for top in _statement_exprs(statement):
                    for sub in _walk_expr(top):
                        if isinstance(sub, ast.Call):
                            pending.append(sub.name)

    def _eval_new(self, expr: ast.New, env, function) -> object:
        if expr.count is not None:
            self._eval(expr.count, env, function)
        site = f"{function.name}:{expr.line}:new {expr.type_expr}"
        if self._imprecise > 0:
            self._counters[site] = None
            instance: Optional[Affine] = None
        else:
            counter = self._counters.get(site, Affine.constant(0))
            if counter is None:
                instance = None
            else:
                instance = counter
                self._counters[site] = counter.add_const(1)
        element = self._concrete(self.types.resolve(expr.type_expr))
        return SPointer(
            HeapBase(site, instance), Affine.constant(0), element
        )

    # -- lvalues ---------------------------------------------------------

    def _lvalue(
        self, expr: ast.Expr, env, function
    ) -> Tuple[Optional[object], Optional[Affine], Optional[Type]]:
        if isinstance(expr, ast.VarRef):
            declared = self.globals.get(expr.name)
            if expr.name in env or declared is None:
                return (None, None, None)
            return (StaticBase(expr.name), Affine.constant(0), declared)
        if isinstance(expr, ast.FieldAccess):
            return self._field_lvalue(expr, env, function)
        if isinstance(expr, ast.Index):
            pointer = self._pointer_operand(expr.base, env, function)
            index = self._eval(expr.index, env, function)
            if pointer is None:
                # Still evaluate operands for their effects, then give up.
                return (None, None, None)
            base, offset, element = pointer
            if not isinstance(index, SInt):
                return (base, None, element)
            scaled = index.value.scale(element.size())
            return (base, offset.add(scaled), element)
        return (None, None, None)

    def _field_lvalue(
        self, expr: ast.FieldAccess, env, function
    ) -> Tuple[Optional[object], Optional[Affine], Optional[Type]]:
        if expr.through_pointer:
            pointer = self._pointer_operand(expr.base, env, function)
            if pointer is None:
                return (None, None, None)
            base, offset, pointee = pointer
            struct = self._concrete(pointee)
            if not isinstance(struct, StructType):
                return (None, None, None)
            try:
                field_record = struct.field(expr.field_name)
            except Exception:
                return (None, None, None)
            return (
                base,
                offset.add_const(field_record.offset),
                self._concrete(field_record.type),
            )
        base, offset, base_type = self._lvalue(expr.base, env, function)
        if base is None or offset is None or base_type is None:
            return (None, None, None)
        struct = self._concrete(base_type)
        if not isinstance(struct, StructType):
            return (None, None, None)
        try:
            field_record = struct.field(expr.field_name)
        except Exception:
            return (None, None, None)
        return (
            base,
            offset.add_const(field_record.offset),
            self._concrete(field_record.type),
        )

    def _pointer_operand(
        self, expr: ast.Expr, env, function
    ) -> Optional[Tuple[object, Affine, Type]]:
        value = self._eval(expr, env, function)
        if isinstance(value, SPointer):
            element = self._concrete(value.element)
            if isinstance(element, ArrayType):
                element = self._concrete(element.element)
            return (value.base, value.offset, element)
        return None


def _statement_exprs(statement) -> List[ast.Expr]:
    if isinstance(statement, ast.VarDecl):
        return [] if statement.initializer is None else [statement.initializer]
    if isinstance(statement, ast.Assign):
        return [statement.value, statement.target]
    if isinstance(statement, ast.ExprStmt):
        return [statement.expr]
    if isinstance(statement, ast.Delete):
        return [statement.pointer]
    if isinstance(statement, ast.Return):
        return [] if statement.value is None else [statement.value]
    if isinstance(statement, ast.If):
        return [statement.condition]
    if isinstance(statement, ast.While):
        return [statement.condition]
    return []


def _walk_expr(expr: Optional[ast.Expr]):
    if expr is None:
        return
    yield expr
    if isinstance(expr, ast.Unary):
        yield from _walk_expr(expr.operand)
    elif isinstance(expr, ast.Binary):
        yield from _walk_expr(expr.left)
        yield from _walk_expr(expr.right)
    elif isinstance(expr, ast.Call):
        for argument in expr.args:
            yield from _walk_expr(argument)
    elif isinstance(expr, ast.New):
        yield from _walk_expr(expr.count)
    elif isinstance(expr, ast.FieldAccess):
        yield from _walk_expr(expr.base)
    elif isinstance(expr, ast.Index):
        yield from _walk_expr(expr.base)
        yield from _walk_expr(expr.index)
    elif isinstance(expr, ast.AddressOf):
        yield from _walk_expr(expr.target)


def analyze_source(
    source: str, entry: str = "main", args: Tuple[int, ...] = ()
) -> StaticLmadResult:
    """Parse and statically analyze mini-IR source."""
    return StaticLmadAnalyzer(parse(source), entry=entry, args=args).run()
