"""Tests for the Sequitur grammar compressor."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.sequitur import Ref, SequiturGrammar, compress


class TestPaperExample:
    def test_abcbcabcbc(self):
        """The paper's Section 3.1 example: S -> AA; A -> aBB; B -> bc."""
        grammar = compress("abcbcabcbc")
        assert grammar.expand() == list("abcbcabcbc")
        rules = grammar.rules()
        assert len(rules) == 3  # S, A, B
        # the start rule is two references to one rule
        start_rhs = grammar.to_productions()[grammar.start.id]
        assert len(start_rhs) == 2
        assert start_rhs[0] == start_rhs[1]
        assert isinstance(start_rhs[0], Ref)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "sequence",
        [
            [],
            [1],
            [1, 2],
            [1, 1],
            [1, 1, 1],
            [1, 1, 1, 1],
            [0, 8] * 50,
            list(range(100)),
            [5] * 300,
            [0, 4, 8, 12] * 40 + [1, 2] * 15,
            [1, 4, 3, 1, 4, 3, 4, 3],
            [1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 1, 1, 0, 0, 1, 0, 0, 0, 0],
        ],
    )
    def test_expand_inverts_feed(self, sequence):
        grammar = compress(sequence)
        assert grammar.expand() == list(sequence)
        grammar.check_invariants()

    def test_random_streams(self):
        rng = random.Random(1234)
        for trial in range(200):
            n = rng.randint(0, 300)
            alphabet = rng.randint(1, 6)
            sequence = [rng.randint(0, alphabet) for __ in range(n)]
            grammar = compress(sequence)
            assert grammar.expand() == sequence, trial
            grammar.check_invariants()

    def test_incremental_feeding_equals_batch(self):
        sequence = [1, 2, 3, 1, 2, 3, 4, 1, 2]
        incremental = SequiturGrammar()
        for token in sequence:
            incremental.feed(token)
        batch = compress(sequence)
        assert incremental.expand() == batch.expand()

    def test_hashable_nonint_terminals(self):
        sequence = [("I", 1), ("A", 0x100)] * 20
        grammar = compress(sequence)
        assert grammar.expand() == sequence


class TestCompression:
    def test_repetitive_stream_compresses(self):
        grammar = compress([1, 2, 3, 4] * 100)
        assert grammar.size() < 40

    def test_constant_stream_compresses_heavily(self):
        grammar = compress([7] * 1024)
        assert grammar.size() <= 24

    def test_random_stream_does_not_compress(self):
        rng = random.Random(0)
        sequence = [rng.randint(0, 10**9) for __ in range(500)]
        grammar = compress(sequence)
        assert grammar.size() >= 500  # all-unique terminals: no rules

    def test_tokens_fed_counter(self):
        grammar = compress([1, 2] * 10)
        assert grammar.tokens_fed == 20

    def test_size_bytes_fixed_width(self):
        grammar = compress([1, 2, 3])
        assert grammar.size_bytes(4) == (grammar.size() + grammar.rule_count()) * 4

    def test_varint_small_terminals_cheaper_than_large(self):
        small = compress(list(range(100)))
        large = compress([v + (1 << 40) for v in range(100)])
        assert small.size() == large.size()
        assert small.size_bytes_varint() < large.size_bytes_varint()

    def test_varint_handles_negative_terminals(self):
        grammar = compress([-1, -100, 5] * 10)
        assert grammar.expand() == [-1, -100, 5] * 10
        assert grammar.size_bytes_varint() > 0


class TestInvariants:
    def test_rule_utility_holds_on_structured_input(self):
        rng = random.Random(7)
        motif = [rng.randint(0, 20) for __ in range(9)]
        sequence = []
        for __ in range(40):
            sequence.extend(motif if rng.random() < 0.8 else [rng.randint(0, 20)])
        grammar = compress(sequence)
        grammar.check_invariants()
        for rule in grammar.rules():
            if rule is not grammar.start:
                assert rule.refcount >= 2

    def test_rules_have_at_least_two_symbols_or_are_start(self):
        rng = random.Random(9)
        sequence = [rng.randint(0, 4) for __ in range(400)]
        grammar = compress(sequence)
        for rule in grammar.rules():
            if rule is not grammar.start:
                assert rule.length() >= 2


class TestProductions:
    def test_productions_expand_consistently(self):
        sequence = [1, 2, 1, 2, 3, 1, 2, 1, 2, 3]
        grammar = compress(sequence)
        productions = grammar.to_productions()

        def expand(rule_id):
            out = []
            for symbol in productions[rule_id]:
                if isinstance(symbol, Ref):
                    out.extend(expand(symbol.rule_id))
                else:
                    out.append(symbol)
            return out

        assert expand(grammar.start.id) == sequence

    def test_ref_equality_and_hash(self):
        assert Ref(3) == Ref(3)
        assert Ref(3) != Ref(4)
        assert len({Ref(3), Ref(3), Ref(4)}) == 2
        assert repr(Ref(3)) == "Ref(3)"


@settings(max_examples=150, deadline=None)
@given(st.lists(st.integers(0, 6), max_size=300))
def test_sequitur_property_roundtrip_and_invariants(sequence):
    grammar = compress(sequence)
    assert grammar.expand() == sequence
    grammar.check_invariants()


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 2), min_size=50, max_size=400))
def test_sequitur_low_alphabet_stress(sequence):
    """Tiny alphabets maximize digram collisions and restructuring."""
    grammar = compress(sequence)
    assert grammar.expand() == sequence
    grammar.check_invariants()
