"""Content-addressed blob storage (the bottom layer of PROFSTORE).

Blob ingest implements its own mkstemp + fsync + rename discipline
(content is compressed streamwise, so :func:`atomic_write_bytes`
cannot be reused here); the module is marked durable-primitive so
REPROLINT does not convict the implementation of the very rule it
enforces.

A blob is an immutable byte string keyed by the sha256 hex digest of
its *uncompressed* content and stored zlib-compressed under a git-style
fan-out directory (``objects/ab/cdef...``).  Content addressing gives
three properties the profile store builds on:

* **Deduplication** -- ingesting the same profile twice stores one
  blob; the manifest may reference it from many runs.
* **Integrity** -- every read decompresses and re-hashes; a flipped
  bit anywhere in the file surfaces as
  :class:`~repro.core.profile_io.ProfileFormatError`, never as silently
  wrong profile data.
* **Crash safety** -- blobs are written to a temp file and
  ``os.replace``d into place, and a half-written temp file is invisible
  to readers.  Writing an already-present digest is a no-op.
"""

# repro: durable-primitive  (implements its own atomic-rename write path)

from __future__ import annotations

import hashlib
import os
import tempfile
import zlib
from typing import Iterator

from repro.core.profile_io import ProfileFormatError

_HEX = frozenset("0123456789abcdef")


def sha256_hex(data: bytes) -> str:
    """The content address of ``data``."""
    return hashlib.sha256(data).hexdigest()


class BlobStore:
    """sha256-keyed, zlib-compressed blobs under one directory."""

    def __init__(self, directory: str, compress_level: int = 6) -> None:
        self.directory = directory
        self.compress_level = compress_level
        os.makedirs(directory, exist_ok=True)

    def path(self, digest: str) -> str:
        if len(digest) != 64 or any(c not in "0123456789abcdef" for c in digest):
            raise ValueError(f"not a sha256 hex digest: {digest!r}")
        return os.path.join(self.directory, digest[:2], digest[2:])

    def put(self, data: bytes, force: bool = False) -> str:
        """Store ``data``, returning its digest (idempotent).

        ``force=True`` rewrites an already-present blob file (the
        atomic replace makes that safe) -- the read-repair path uses it
        to heal a replica whose on-disk bytes no longer hash to their
        key, which the idempotent fast path would otherwise skip.
        """
        digest = sha256_hex(data)
        target = self.path(digest)
        if not force and os.path.exists(target):
            return digest
        directory = os.path.dirname(target)
        os.makedirs(directory, exist_ok=True)
        descriptor, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(descriptor, "wb") as handle:
                handle.write(zlib.compress(data, self.compress_level))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_path, target)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        return digest

    def get(self, digest: str) -> bytes:
        """The exact bytes stored under ``digest``.

        Decompression failures and digest mismatches both raise
        :class:`ProfileFormatError`: whatever corrupted the file, the
        caller never receives bytes that do not hash to their key.
        """
        try:
            with open(self.path(digest), "rb") as handle:
                compressed = handle.read()
        except OSError as exc:
            raise ProfileFormatError(
                f"blob {digest[:12]} unreadable: {exc}"
            ) from exc
        try:
            data = zlib.decompress(compressed)
        except zlib.error as exc:
            raise ProfileFormatError(
                f"blob {digest[:12]} corrupt: {exc}"
            ) from exc
        if sha256_hex(data) != digest:
            raise ProfileFormatError(
                f"blob {digest[:12]} corrupt: content does not match digest"
            )
        return data

    def contains(self, digest: str) -> bool:
        try:
            return os.path.exists(self.path(digest))
        except ValueError:
            return False

    def delete(self, digest: str) -> bool:
        """Remove one blob; True when a file was actually deleted."""
        try:
            os.unlink(self.path(digest))
        except FileNotFoundError:
            return False
        return True

    def digests(self) -> Iterator[str]:
        """Every digest present on disk (unordered).

        Only names that actually form a sha256 hex digest are yielded:
        a stray file in a fan dir (an editor backup, a foreign temp
        file) must not surface as a digest that :meth:`path` would then
        reject mid-iteration in ``stored_bytes()`` / ``gc()``.
        """
        try:
            fans = os.listdir(self.directory)
        except OSError:
            return
        for fan in fans:
            fan_dir = os.path.join(self.directory, fan)
            if len(fan) != 2 or not set(fan) <= _HEX or not os.path.isdir(fan_dir):
                continue
            for rest in os.listdir(fan_dir):
                if len(rest) == 62 and set(rest) <= _HEX:
                    yield fan + rest

    def stored_bytes(self) -> int:
        """Total compressed bytes on disk across all blobs."""
        total = 0
        for digest in self.digests():
            try:
                total += os.path.getsize(self.path(digest))
            except OSError:
                pass
        return total

    def __len__(self) -> int:
        return sum(1 for __ in self.digests())
