"""Online Sequitur compression (Nevill-Manning & Witten, 1997).

WHOMP compresses each decomposed dimension stream with Sequitur, which
"encodes input data stream as a context-free grammar based on its
repeating patterns" (Section 3.1).  The paper's example:

    "abcbcabcbc"  ->  S -> AA;  A -> aBB;  B -> bc

The implementation enforces the two Sequitur invariants after every
appended token:

* **digram uniqueness** -- no pair of adjacent symbols appears more than
  once in the grammar without overlap (a repeated digram becomes a rule);
* **rule utility** -- every rule other than S is referenced at least
  twice (a rule used once is inlined and deleted).

Enforcement is organized around a *work queue*: every structural edit
(substitution, inlining) records the boundary symbols whose digrams may
have changed, and a drain loop re-checks them until the grammar is
stable.  Queue entries are validated against symbol liveness and the
digram index before acting, which keeps the cascade logic simple and
verifiable; the classic recursive formulation is notoriously easy to get
subtly wrong.

Terminals may be any hashable value; the profilers feed integers.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Tuple, Union

Terminal = Hashable


class _Symbol:
    """A node in a rule's doubly linked symbol list.

    ``value`` is a terminal or a :class:`Rule` (a non-terminal).  Guard
    nodes -- the circular sentinels heading each rule -- carry the rule
    itself as value and are recognized via ``is_guard``.  ``alive``
    turns False when the node is unlinked, letting queued work detect
    stale references.
    """

    __slots__ = ("value", "prev", "next", "is_guard", "alive")

    def __init__(self, value: Union[Terminal, "Rule"], is_guard: bool = False) -> None:
        self.value = value
        self.prev: Optional["_Symbol"] = None
        self.next: Optional["_Symbol"] = None
        self.is_guard = is_guard
        self.alive = True

    @property
    def is_nonterminal(self) -> bool:
        return isinstance(self.value, Rule) and not self.is_guard


class Rule:
    """One grammar rule: a guard node heading a circular symbol list.

    ``refs`` tracks the live non-terminal symbols referencing this rule,
    so rule utility (refcount) and the single remaining reference are
    both O(1) lookups.
    """

    __slots__ = ("id", "guard", "refs")

    def __init__(self, rule_id: int) -> None:
        self.id = rule_id
        self.guard = _Symbol(self, is_guard=True)
        self.guard.prev = self.guard
        self.guard.next = self.guard
        self.refs: "set[_Symbol]" = set()

    @property
    def refcount(self) -> int:
        return len(self.refs)

    @property
    def first(self) -> _Symbol:
        return self.guard.next  # type: ignore[return-value]

    @property
    def last(self) -> _Symbol:
        return self.guard.prev  # type: ignore[return-value]

    @property
    def empty(self) -> bool:
        return self.guard.next is self.guard

    def symbols(self) -> Iterable[_Symbol]:
        node = self.first
        while not node.is_guard:
            yield node
            node = node.next  # type: ignore[assignment]

    def length(self) -> int:
        return sum(1 for __ in self.symbols())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [
            f"R{s.value.id}" if s.is_nonterminal else repr(s.value)
            for s in self.symbols()
        ]
        return f"R{self.id} -> {' '.join(parts)}"


def _varint_len(value: int) -> int:
    """Bytes to encode ``value`` as a zigzag LEB128-style varint."""
    encoded = value * 2 if value >= 0 else -value * 2 - 1
    length = 1
    while encoded >= 0x80:
        encoded >>= 7
        length += 1
    return length


def _encoded_terminal_len(value: Terminal) -> int:
    """Serialized size of one terminal: varint for integers, a flat
    8-byte record for anything else (tuples etc.)."""
    if isinstance(value, bool) or not isinstance(value, int):
        return 8
    return _varint_len(value)


Digram = Tuple[Hashable, Hashable]


def _digram_key(left: _Symbol, right: _Symbol) -> Digram:
    """Hashable identity of a digram; rules key by their id."""
    lk = ("R", left.value.id) if left.is_nonterminal else ("T", left.value)
    rk = ("R", right.value.id) if right.is_nonterminal else ("T", right.value)
    return (lk, rk)


class SequiturGrammar:
    """An incrementally built Sequitur grammar.

    >>> g = SequiturGrammar()
    >>> g.feed_all("abcbcabcbc")
    >>> g.expand() == list("abcbcabcbc")
    True
    """

    def __init__(self) -> None:
        self._next_rule_id = 0
        self.start = self._new_rule()
        # digram key -> the left symbol of its registered occurrence
        self._digrams: Dict[Digram, _Symbol] = {}
        self._pending: List[_Symbol] = []
        self._tokens_fed = 0

    # -- public API ----------------------------------------------------

    def feed(self, token: Terminal) -> None:
        """Append one terminal to the input sequence."""
        self._tokens_fed += 1
        new = _Symbol(token)
        self._insert_after(self.start.last, new)
        self._pending.append(new.prev)  # type: ignore[arg-type]
        self._drain()

    def feed_all(self, tokens: Iterable[Terminal]) -> None:
        for token in tokens:
            self.feed(token)

    @property
    def tokens_fed(self) -> int:
        return self._tokens_fed

    def rules(self) -> List[Rule]:
        """All rules reachable from the start rule, in id order."""
        seen: Dict[int, Rule] = {}
        stack = [self.start]
        while stack:
            rule = stack.pop()
            if rule.id in seen:
                continue
            seen[rule.id] = rule
            for symbol in rule.symbols():
                if symbol.is_nonterminal:
                    stack.append(symbol.value)
        return [seen[rid] for rid in sorted(seen)]

    def size(self) -> int:
        """Grammar size: total symbols on all right-hand sides.

        The standard measure of a Sequitur grammar's size, and what the
        OMSG-vs-RASG compression comparison counts.
        """
        return sum(rule.length() for rule in self.rules())

    def rule_count(self) -> int:
        return len(self.rules())

    def size_bytes(self, bytes_per_symbol: int = 4) -> int:
        """Approximate serialized size: one fixed-width code per RHS
        symbol plus one header code per rule."""
        return (self.size() + self.rule_count()) * bytes_per_symbol

    def size_bytes_varint(self) -> int:
        """Serialized size with variable-length integer coding.

        This is the size a real grammar file would have: every RHS
        symbol is one tag bit plus a zigzag varint (terminal value or
        rule id), and each rule costs a varint length header.  The
        metric is what makes the byte-level OMSG/RASG comparison honest:
        object-relative streams carry small integers (offsets, serials,
        group ids) where the raw address stream carries 64-bit pointers.
        """
        total = 0
        for rule in self.rules():
            length = 0
            for symbol in rule.symbols():
                if symbol.is_nonterminal:
                    total += _varint_len(symbol.value.id)
                else:
                    total += _encoded_terminal_len(symbol.value)
                length += 1
            total += _varint_len(length)
        return total

    def expand(self) -> List[Terminal]:
        """Decompress: expand the start rule back to the input sequence."""
        out: List[Terminal] = []
        stack: List[_Symbol] = list(reversed(list(self.start.symbols())))
        while stack:
            symbol = stack.pop()
            if symbol.is_nonterminal:
                stack.extend(reversed(list(symbol.value.symbols())))
            else:
                out.append(symbol.value)
        return out

    def to_productions(self) -> Dict[int, List[Union[Terminal, "Ref"]]]:
        """Plain-data view: rule id -> RHS list; non-terminal references
        appear as :class:`Ref` instances, terminals verbatim."""
        productions: Dict[int, List[Union[Terminal, Ref]]] = {}
        for rule in self.rules():
            rhs: List[Union[Terminal, Ref]] = []
            for symbol in rule.symbols():
                if symbol.is_nonterminal:
                    rhs.append(Ref(symbol.value.id))
                else:
                    rhs.append(symbol.value)
            productions[rule.id] = rhs
        return productions

    @classmethod
    def from_productions(
        cls,
        productions: Dict[int, List[Union[Terminal, "Ref"]]],
        start: int = 0,
        tokens_fed: int = 0,
    ) -> "SequiturGrammar":
        """Rebuild a grammar from its :meth:`to_productions` view.

        The reconstruction is structurally exact -- same rules, same
        right-hand sides -- so every size metric, :meth:`expand`, and a
        further :meth:`to_productions` round-trip match the original.
        The digram index is re-derived (first occurrence per key), so
        the grammar remains feedable.  This is also the pickle path:
        the linked-symbol structure defeats naive pickling, but the
        production view crosses process boundaries as plain data.
        """
        grammar = cls.__new__(cls)
        grammar._digrams = {}
        grammar._pending = []
        grammar._tokens_fed = tokens_fed
        rules: Dict[int, Rule] = {rid: Rule(rid) for rid in productions}
        if start not in rules:
            rules[start] = Rule(start)
        grammar._next_rule_id = max(rules) + 1
        grammar.start = rules[start]
        for rule_id, rhs in productions.items():
            rule = rules[rule_id]
            for symbol in rhs:
                if isinstance(symbol, Ref):
                    try:
                        node = _Symbol(rules[symbol.rule_id])
                    except KeyError:
                        raise ValueError(
                            f"R{rule_id} references undefined R{symbol.rule_id}"
                        ) from None
                else:
                    node = _Symbol(symbol)
                grammar._insert_after(rule.guard.prev, node)
        for rule_id in sorted(rules):
            node = rules[rule_id].first
            while not node.is_guard and not node.next.is_guard:
                grammar._digrams.setdefault(_digram_key(node, node.next), node)
                node = node.next
        return grammar

    def __reduce__(self):
        return (
            _grammar_from_state,
            (self.to_productions(), self.start.id, self._tokens_fed),
        )

    def check_invariants(self) -> None:
        """Assert digram uniqueness and rule utility (used by tests).

        Digram uniqueness permits *overlapping* repeats (``aaa``): the
        algorithm deliberately leaves those alone.
        """
        seen: Dict[Digram, _Symbol] = {}
        for rule in self.rules():
            node = rule.first
            while not node.is_guard and not node.next.is_guard:
                key = _digram_key(node, node.next)
                first = seen.get(key)
                if first is None:
                    seen[key] = node
                else:
                    assert first.next is node, (
                        f"digram uniqueness violated for {key} in R{rule.id}"
                    )
                node = node.next
        for rule in self.rules():
            if rule is not self.start:
                assert rule.refcount >= 2, f"rule utility violated for R{rule.id}"

    # -- structural edits (no invariant logic here) -----------------------

    def _new_rule(self) -> Rule:
        rule = Rule(self._next_rule_id)
        self._next_rule_id += 1
        return rule

    def _insert_after(self, node: _Symbol, new: _Symbol) -> None:
        new.prev = node
        new.next = node.next
        node.next.prev = new  # type: ignore[union-attr]
        node.next = new
        if new.is_nonterminal:
            new.value.refs.add(new)

    def _unlink(self, node: _Symbol) -> None:
        node.prev.next = node.next  # type: ignore[union-attr]
        node.next.prev = node.prev  # type: ignore[union-attr]
        node.alive = False
        if node.is_nonterminal:
            node.value.refs.discard(node)

    def _forget_digram(self, left: _Symbol) -> None:
        """Drop the digram starting at ``left`` from the index if it is
        the registered occurrence.

        An *overlapping* second occurrence of the same key (the ``aaa``
        case) may exist unregistered in the shadow of this one; queue
        the neighbours so it gets re-checked once the edit completes.
        """
        right = left.next
        if left.is_guard or right is None or right.is_guard:
            return
        key = _digram_key(left, right)
        if self._digrams.get(key) is left:
            del self._digrams[key]
            self._pending.append(left.prev)  # type: ignore[arg-type]
            self._pending.append(right)

    # -- invariant enforcement -------------------------------------------

    def _drain(self) -> None:
        """Process queued digram positions until the grammar is stable."""
        while self._pending:
            node = self._pending.pop()
            if not node.alive or node.is_guard:
                continue
            self._check(node)

    def _valid_registration(self, key: Digram, node: _Symbol) -> bool:
        """Whether ``node`` still is a live occurrence of ``key``."""
        if not node.alive or node.is_guard:
            return False
        right = node.next
        if right is None or right.is_guard:
            return False
        return _digram_key(node, right) == key

    def _check(self, left: _Symbol) -> None:
        """Enforce digram uniqueness for the digram starting at ``left``."""
        right = left.next
        if left.is_guard or right is None or right.is_guard:
            return
        key = _digram_key(left, right)
        match = self._digrams.get(key)
        if match is None or not self._valid_registration(key, match):
            self._digrams[key] = left
            return
        if match is left:
            return
        if match.next is left or left.next is match:
            return  # overlapping occurrence ("aaa"): leave it
        self._handle_match(left, match)

    def _handle_match(self, new_left: _Symbol, old_left: _Symbol) -> None:
        """Rewrite two non-overlapping occurrences of one digram."""
        old_right = old_left.next
        assert old_right is not None
        if (
            old_left.prev.is_guard  # type: ignore[union-attr]
            and old_right.next.is_guard  # type: ignore[union-attr]
        ):
            # The registered occurrence is exactly an existing rule's
            # whole body: reuse that rule.
            rule: Rule = old_left.prev.value  # type: ignore[union-attr]
            self._substitute(new_left, rule)
            self._maybe_inline_head(rule)
            return
        rule = self._new_rule()
        body_left = _Symbol(old_left.value)
        body_right = _Symbol(old_right.value)
        self._insert_after(rule.guard, body_left)
        self._insert_after(body_left, body_right)
        self._digrams[_digram_key(body_left, body_right)] = body_left
        # Replace the old occurrence first, then the new one.  Inlining
        # triggered by the first substitution can consume the second
        # occurrence (when it was the sole reference to an inlined
        # rule); the liveness flag detects that.
        self._substitute(old_left, rule)
        if new_left.alive:
            self._substitute(new_left, rule)
        self._maybe_inline_head(rule)

    def _substitute(self, left: _Symbol, rule: Rule) -> None:
        """Replace the digram starting at ``left`` with a reference to
        ``rule`` and queue the changed boundaries."""
        right = left.next
        prev = left.prev
        assert right is not None and prev is not None
        self._forget_digram(prev)
        self._forget_digram(left)
        self._forget_digram(right)
        self._unlink(left)
        self._unlink(right)
        ref = _Symbol(rule)
        self._insert_after(prev, ref)
        self._pending.append(prev)
        self._pending.append(ref)
        # Rule utility: removing the two symbols may have dropped some
        # rule's reference count to one.
        self._maybe_inline(left)
        self._maybe_inline(right)

    def _maybe_inline_head(self, rule: Rule) -> None:
        """After substitutions into ``rule``, its body symbols may now be
        the sole reference to some other rule; check both body symbols
        that formed the digram."""
        for symbol in (rule.first, rule.last):
            if symbol.alive and not symbol.is_guard:
                self._maybe_inline(symbol)

    def _maybe_inline(self, removed: _Symbol) -> None:
        """Rule utility: inline a rule whose refcount dropped to one.

        ``removed`` only supplies the rule identity (``removed.value``);
        the body's symbol nodes move wholesale into the referencing
        rule, so their digram registrations stay valid.  Only the two
        boundary digrams around the reference change; they are queued.
        """
        if not removed.is_nonterminal:
            return
        rule: Rule = removed.value
        if rule.refcount != 1:
            return
        ref = next(iter(rule.refs))
        prev, next_node = ref.prev, ref.next
        assert prev is not None and next_node is not None
        self._forget_digram(prev)
        self._forget_digram(ref)
        first, last = rule.first, rule.last
        self._unlink(ref)  # rule's refcount drops to zero: rule is dead
        if rule.empty:
            self._pending.append(prev)
            return
        prev.next = first
        first.prev = prev
        last.next = next_node
        next_node.prev = last
        self._pending.append(prev)
        self._pending.append(last)


class Ref:
    """A non-terminal reference in :meth:`SequiturGrammar.to_productions`."""

    __slots__ = ("rule_id",)

    def __init__(self, rule_id: int) -> None:
        self.rule_id = rule_id

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Ref) and other.rule_id == self.rule_id

    def __hash__(self) -> int:
        return hash(("Ref", self.rule_id))

    def __repr__(self) -> str:
        return f"Ref({self.rule_id})"


def _grammar_from_state(productions, start, tokens_fed) -> SequiturGrammar:
    """Module-level unpickle hook for :meth:`SequiturGrammar.__reduce__`
    (subclass-agnostic pickling would lose the production round-trip)."""
    return SequiturGrammar.from_productions(
        productions, start=start, tokens_fed=tokens_fed
    )


def compress(tokens: Iterable[Terminal]) -> SequiturGrammar:
    """One-shot convenience: build a grammar over ``tokens``."""
    grammar = SequiturGrammar()
    grammar.feed_all(tokens)
    return grammar
