"""Consistent-hash ring invariants (property-tested).

The cluster's placement correctness rests on these: distinct replicas,
insertion-order independence, and bounded movement under membership
change.  Keys are synthetic sha256-like hex strings.
"""

import hashlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.health import RingState
from repro.cluster.ring import HashRing


def keys(count, salt=0):
    return [
        hashlib.sha256(f"key-{salt}-{index}".encode()).hexdigest()
        for index in range(count)
    ]


def ring_of(names, vnodes=32):
    ring = HashRing(vnodes=vnodes)
    for name in names:
        ring.add(name)
    return ring


shard_sets = st.lists(
    st.sampled_from([f"shard{i}" for i in range(8)]),
    min_size=1,
    max_size=8,
    unique=True,
)


class TestPlacementBasics:
    @given(shards=shard_sets, replicas=st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_replicas_are_distinct_and_bounded(self, shards, replicas):
        ring = ring_of(shards)
        for key in keys(20):
            placed = ring.place(key, replicas=replicas)
            assert len(placed) == len(set(placed))
            assert len(placed) == min(replicas, len(shards))
            assert set(placed) <= set(shards)

    @given(shards=st.permutations([f"shard{i}" for i in range(5)]))
    @settings(max_examples=25, deadline=None)
    def test_placement_ignores_insertion_order(self, shards):
        baseline = ring_of(sorted(shards))
        permuted = ring_of(list(shards))
        for key in keys(30):
            assert baseline.place(key, 2) == permuted.place(key, 2)

    def test_empty_and_single(self):
        ring = HashRing(vnodes=8)
        assert ring.place("a" * 64, 2) == []
        ring.add("only")
        assert ring.place("a" * 64, 2) == ["only"]

    def test_add_remove_idempotent(self):
        ring = ring_of(["shard0", "shard1"])
        points = ring.layout()["points"]
        ring.add("shard0")
        assert ring.layout()["points"] == points
        ring.remove("absent")
        assert ring.layout()["points"] == points


class TestStability:
    @given(
        shards=st.lists(
            st.sampled_from([f"shard{i}" for i in range(6)]),
            min_size=2, max_size=6, unique=True,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_adding_a_shard_only_moves_keys_onto_it(self, shards):
        """Consistency: a join may claim keys, never shuffle others."""
        old = ring_of(shards)
        grown = ring_of(shards + ["joiner"])
        for key in keys(40):
            before = old.place(key, 1)[0]
            after = grown.place(key, 1)[0]
            assert after == before or after == "joiner"

    @given(
        shards=st.lists(
            st.sampled_from([f"shard{i}" for i in range(6)]),
            min_size=3, max_size=6, unique=True,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_removing_a_shard_strands_only_its_keys(self, shards):
        full = ring_of(shards)
        removed = shards[0]
        shrunk = ring_of(shards)
        shrunk.remove(removed)
        for key in keys(40):
            before = full.place(key, 1)[0]
            after = shrunk.place(key, 1)[0]
            if before != removed:
                assert after == before

    def test_join_moves_a_bounded_fraction(self):
        """~1/(N+1) of the keyspace moves; assert well under half.

        Deterministic (sha256 positions), so a hard bound is safe.
        """
        sample = keys(400)
        old = ring_of(["shard0", "shard1", "shard2"], vnodes=64)
        grown = ring_of(["shard0", "shard1", "shard2", "shard3"], vnodes=64)
        moved = sum(
            1
            for key in sample
            if old.place(key, 1) != grown.place(key, 1)
        )
        assert moved / len(sample) < 0.5
        assert moved > 0  # the new shard actually takes traffic


class TestRingState:
    def test_locked_facade_matches_bare_ring(self):
        state = RingState(replicas=2, vnodes=16)
        bare = HashRing(vnodes=16)
        for name in ("shard0", "shard1", "shard2"):
            state.add(name)
            bare.add(name)
        for key in keys(25):
            assert state.place(key) == bare.place(key, 2)

    def test_version_counts_membership_changes(self):
        state = RingState(replicas=2)
        assert state.layout()["version"] == 0
        state.add("shard0")
        state.add("shard0")  # idempotent: no version bump
        state.add("shard1")
        state.remove("shard0")
        state.remove("shard0")
        assert state.layout()["version"] == 3
        assert state.shards() == ("shard1",)

    def test_layout_shares_sum_to_one(self):
        state = RingState(replicas=2, vnodes=64)
        for name in ("shard0", "shard1", "shard2"):
            state.add(name)
        shares = state.layout()["keyspace_share"]
        assert abs(sum(shares.values()) - 1.0) < 1e-6
        assert all(share > 0 for share in shares.values())
