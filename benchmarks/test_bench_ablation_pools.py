"""Ablation bench: custom allocation pools (the paper's footnote 2).

"We choose to treat custom alloc pools as single objects.  An
alternative is to manually target the custom alloc/dealloc functions
rather than target the standard malloc/free...  The profiler can be
parameterized to handle this."

Both parameterizations run on the parser stand-in: the pool-as-single-
object default and the carved variant whose xalloc/reset points fire
the object probes.  Carving trades a bigger object population for
node-relative offsets; which profile is smaller depends on the
workload's balance of within-node vs cross-node regularity, and both
must stay lossless.
"""

from conftest import SCALE, once

from repro.core.cdc import translate_trace
from repro.core.omc import ObjectManager
from repro.profilers.leap import LeapProfiler
from repro.profilers.whomp import WhompProfiler
from repro.workloads.registry import create


def test_pool_parameterization(benchmark):
    def measure():
        rows = {}
        for name in ("parser", "parser.carved"):
            trace = create(name, scale=SCALE).trace()
            omc = ObjectManager()
            list(translate_trace(trace, omc))
            whomp = WhompProfiler().profile(trace)
            leap = LeapProfiler().profile(trace)
            raw = [(e.instruction_id, e.address) for e in trace.accesses()]
            assert whomp.reconstruct_accesses() == raw
            rows[name] = {
                "objects": len(omc.objects()),
                "groups": len(omc.groups),
                "omsg_bytes": whomp.size_bytes_varint(),
                "leap_captured": leap.accesses_captured(),
            }
        return rows

    rows = once(benchmark, measure)
    print()
    for name, row in rows.items():
        print(f"{name:14s} objects {row['objects']:6d}  groups "
              f"{row['groups']}  OMSG {row['omsg_bytes']:7d} B  "
              f"LEAP captured {row['leap_captured']:.1%}")

    flat, carved = rows["parser"], rows["parser.carved"]
    # carving explodes the object population...
    assert carved["objects"] > 50 * flat["objects"]
    # ...while the access stream itself is identical in length, and
    # both parameterizations stay lossless (asserted inside measure)
    assert flat["groups"] < carved["groups"] + 2
