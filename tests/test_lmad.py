"""Tests for the LMAD linear compressor."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.lmad import (
    DEFAULT_BUDGET,
    LMAD,
    LMADCompressor,
    OverflowSummary,
    compress,
)


class TestLMAD:
    def test_paper_example(self):
        """Offsets 0 4 8 12 44 40 36 -> [0,4,4] and [44,-4,3]."""
        entry = compress([(v,) for v in (0, 4, 8, 12, 44, 40, 36)], dims=1)
        assert [repr(l) for l in entry.lmads] == ["[0, 4, 4]", "[44, -4, 3]"]
        assert entry.complete

    def test_element_and_last(self):
        lmad = LMAD((0, 100), (8, -1), 5)
        assert lmad.element(0) == (0, 100)
        assert lmad.element(4) == (32, 96)
        assert lmad.last == (32, 96)
        with pytest.raises(IndexError):
            lmad.element(5)

    def test_expand(self):
        lmad = LMAD((0,), (4,), 3)
        assert list(lmad.expand()) == [(0,), (4,), (8,)]

    def test_component_projection(self):
        lmad = LMAD((1, 2, 3), (4, 5, 6), 7)
        assert lmad.component(1) == LMAD((2,), (5,), 7)

    def test_validation(self):
        with pytest.raises(ValueError):
            LMAD((0,), (1, 2), 3)
        with pytest.raises(ValueError):
            LMAD((0,), (1,), 0)

    def test_repr_multidim(self):
        assert repr(LMAD((1, 2), (3, 4), 5)) == "[[1, 2], [3, 4], 5]"


class TestCompressor:
    def test_single_element(self):
        entry = compress([(5,)], dims=1)
        assert entry.lmads == (LMAD((5,), (0,), 1),)

    def test_two_elements_fix_stride(self):
        entry = compress([(5,), (9,)], dims=1)
        assert entry.lmads == (LMAD((5,), (4,), 2),)

    def test_constant_stream_is_one_descriptor(self):
        entry = compress([(7,)] * 1000, dims=1)
        assert entry.lmads == (LMAD((7,), (0,), 1000),)
        assert entry.sample_quality == 1.0

    def test_multidimensional_pattern(self):
        triples = [(0, i * 8, i * 3) for i in range(50)]
        entry = compress(triples, dims=3)
        assert entry.lmads == (LMAD((0, 0, 0), (0, 8, 3), 50),)

    def test_stride_change_splits(self):
        entry = compress([(0,), (8,), (16,), (17,), (18,)], dims=1)
        assert entry.lmads == (LMAD((0,), (8,), 3), LMAD((17,), (1,), 2))

    def test_dimension_mismatch_rejected(self):
        compressor = LMADCompressor(dims=2)
        with pytest.raises(ValueError):
            compressor.feed((1,))

    def test_feed_after_finish_rejected(self):
        compressor = LMADCompressor(dims=1)
        compressor.finish()
        with pytest.raises(RuntimeError):
            compressor.feed((1,))

    def test_finish_idempotent(self):
        compressor = LMADCompressor(dims=1)
        compressor.feed((1,))
        first = compressor.finish()
        second = compressor.finish()
        assert first.lmads == second.lmads

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            LMADCompressor(dims=0)
        with pytest.raises(ValueError):
            LMADCompressor(dims=1, budget=0)


class TestBudgetAndOverflow:
    def test_budget_exhaustion_discards(self):
        # alternating pattern that can never chain: every pair is new
        symbols = []
        for i in range(100):
            symbols.extend([(i * 97 % 31,), (i * 89 % 29 + 1000,)])
        entry = compress(symbols, dims=1, budget=5)
        assert len(entry.lmads) == 5
        assert entry.overflow.count > 0
        assert entry.captured_symbols + entry.overflow.count == 200

    def test_default_budget_is_papers_30(self):
        assert DEFAULT_BUDGET == 30

    def test_overflow_summary_min_max(self):
        entry = compress(
            [(0,), (100,), (3,), (77,), (50,), (2,), (99,)], dims=1, budget=1
        )
        # first LMAD captures (0,100); the rest are discarded
        assert entry.overflow.count == 5
        assert entry.overflow.minimum == (2,)
        assert entry.overflow.maximum == (99,)

    def test_overflow_granularity(self):
        summary = OverflowSummary(dims=1)
        for value in (10, 18, 26, 42):
            summary.add((value,))
        assert summary.granularity == (8,)

    def test_sample_quality_fraction(self):
        symbols = [(i * i,) for i in range(40)]  # quadratic: nothing linear
        entry = compress(symbols, dims=1, budget=3)
        assert 0.0 < entry.sample_quality < 1.0
        assert entry.sample_quality == entry.captured_symbols / 40

    def test_empty_stream_quality(self):
        entry = compress([], dims=1)
        assert entry.sample_quality == 1.0
        assert entry.complete
        assert entry.size_records() == 0

    def test_size_records(self):
        entry = compress([(0,), (1,), (5,), (100,), (2,)], dims=1, budget=2)
        assert entry.size_records() == 2 + 1  # two LMADs + overflow summary


class TestExpansion:
    def test_expand_matches_captured_prefix(self):
        symbols = [(v,) for v in (0, 4, 8, 12, 44, 40, 36)]
        entry = compress(symbols, dims=1)
        assert entry.expand() == [(0,), (4,), (8,), (12,), (44,), (40,), (36,)]


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(-50, 50), st.integers(-50, 50)), max_size=80
    )
)
def test_lmad_lossless_when_budget_unbounded(symbols):
    """With a budget bigger than the stream, expansion is exact."""
    entry = compress(symbols, dims=2, budget=max(len(symbols), 1))
    assert entry.expand() == [tuple(s) for s in symbols]
    assert entry.complete


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.integers(-1000, 1000), max_size=120),
    st.integers(1, 8),
)
def test_lmad_counts_always_consistent(values, budget):
    entry = compress([(v,) for v in values], dims=1, budget=budget)
    assert entry.captured_symbols + entry.overflow.count == len(values)
    assert len(entry.lmads) <= budget
    assert sum(l.count for l in entry.lmads) == entry.captured_symbols
    # captured prefix is exact
    assert entry.expand() == [(v,) for v in values[: entry.captured_symbols]]
