"""Lexer for the mini-IR language.

The mini-IR is a small C-like language used to write instrumentable
programs against the simulated process: structs, pointers, fixed-size
arrays, globals, functions, loops.  Programs compile to an AST that the
interpreter executes on a :class:`~repro.runtime.process.Process`, with
every syntactic load/store becoming a distinct static instruction --
exactly the granularity at which the paper's instruction probes sit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List


class LangError(Exception):
    """Base error for the mini-IR toolchain."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" at {line}:{column}" if line else ""
        super().__init__(f"{message}{location}")
        #: the bare message, without the baked-in location suffix, for
        #: tools that format their own ``file:line:col:`` prefix
        self.message = message
        self.line = line
        self.column = column


class LexError(LangError):
    """Raised on invalid source characters or unterminated comments."""


class TokenKind(enum.Enum):
    IDENT = "ident"
    INT = "int-literal"
    PUNCT = "punct"
    KEYWORD = "keyword"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "struct",
        "fn",
        "var",
        "global",
        "if",
        "else",
        "while",
        "for",
        "return",
        "new",
        "delete",
        "null",
        "int",
        "true",
        "false",
        "break",
        "continue",
    }
)

#: multi-character punctuation, longest first so maximal munch works
PUNCTUATION = (
    "->",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "+",
    "-",
    "*",
    "/",
    "%",
    "=",
    "<",
    ">",
    "!",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ";",
    ",",
    ".",
    "&",
    ":",
)


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.column})"


def tokenize(source: str) -> List[Token]:
    """Turn source text into a token list ending with an EOF token."""
    tokens: List[Token] = []
    line = 1
    column = 1
    index = 0
    length = len(source)

    def error(message: str) -> LexError:
        return LexError(message, line, column)

    while index < length:
        char = source[index]
        # whitespace
        if char == "\n":
            line += 1
            column = 1
            index += 1
            continue
        if char in " \t\r":
            index += 1
            column += 1
            continue
        # comments
        if source.startswith("//", index):
            while index < length and source[index] != "\n":
                index += 1
            continue
        if source.startswith("/*", index):
            end = source.find("*/", index + 2)
            if end == -1:
                raise error("unterminated block comment")
            skipped = source[index : end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                column = len(skipped) - skipped.rfind("\n")
            else:
                column += len(skipped)
            index = end + 2
            continue
        # identifiers / keywords
        if char.isalpha() or char == "_":
            start = index
            while index < length and (source[index].isalnum() or source[index] == "_"):
                index += 1
            text = source[start:index]
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, text, line, column))
            column += len(text)
            continue
        # integer literals (decimal or hex)
        if char.isdigit():
            start = index
            if source.startswith("0x", index) or source.startswith("0X", index):
                index += 2
                while index < length and source[index] in "0123456789abcdefABCDEF":
                    index += 1
            else:
                while index < length and source[index].isdigit():
                    index += 1
            text = source[start:index]
            tokens.append(Token(TokenKind.INT, text, line, column))
            column += len(text)
            continue
        # punctuation
        for punct in PUNCTUATION:
            if source.startswith(punct, index):
                tokens.append(Token(TokenKind.PUNCT, punct, line, column))
                index += len(punct)
                column += len(punct)
                break
        else:
            raise error(f"unexpected character {char!r}")

    tokens.append(Token(TokenKind.EOF, "", line, column))
    return tokens


def token_stream(source: str) -> Iterator[Token]:
    return iter(tokenize(source))
