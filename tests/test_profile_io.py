"""Tests for profile serialization round trips."""

import io
import json

import pytest

from repro.baselines.dependence_lossless import LosslessDependenceProfiler
from repro.core.profile_io import (
    ProfileFormatError,
    load_dependence,
    load_leap,
    load_whomp_streams,
    save_dependence,
    save_leap,
    save_whomp,
)
from repro.core.tuples import DIMENSIONS
from repro.postprocess.dependence import analyze_dependences
from repro.profilers.leap import LeapProfiler
from repro.profilers.whomp import WhompProfiler


class TestWhompIO:
    def test_round_trip_streams(self, list_trace):
        profile = WhompProfiler().profile(list_trace)
        buffer = io.StringIO()
        save_whomp(profile, buffer)
        buffer.seek(0)
        loaded = load_whomp_streams(buffer)
        for name in DIMENSIONS:
            assert loaded["streams"][name] == profile.grammars[name].expand()
        assert loaded["base_addresses"] == profile.base_addresses
        assert loaded["access_count"] == profile.access_count
        assert loaded["group_labels"] == profile.group_labels
        assert [tuple(r) for r in loaded["lifetimes"]] == [
            tuple(r) for r in profile.lifetimes
        ]

    def test_wrong_format_rejected(self, simple_trace):
        profile = LeapProfiler().profile(simple_trace)
        buffer = io.StringIO()
        save_leap(profile, buffer)
        buffer.seek(0)
        with pytest.raises(ProfileFormatError):
            load_whomp_streams(buffer)


class TestLeapIO:
    def test_round_trip(self, list_trace):
        profile = LeapProfiler().profile(list_trace)
        buffer = io.StringIO()
        save_leap(profile, buffer)
        buffer.seek(0)
        loaded = load_leap(buffer)
        assert loaded.entries == profile.entries
        assert loaded.kinds == profile.kinds
        assert loaded.exec_counts == profile.exec_counts
        assert loaded.access_count == profile.access_count
        assert loaded.budget == profile.budget
        assert loaded.group_labels == profile.group_labels

    def test_loaded_profile_analyzable(self, list_trace):
        profile = LeapProfiler().profile(list_trace)
        buffer = io.StringIO()
        save_leap(profile, buffer)
        buffer.seek(0)
        loaded = load_leap(buffer)
        original = analyze_dependences(profile).dependent_pairs()
        reloaded = analyze_dependences(loaded).dependent_pairs()
        assert original == reloaded

    def test_overflow_summary_preserved(self):
        from repro.workloads.micro import HashProbe

        trace = HashProbe(buckets=512, probes=800).trace()
        profile = LeapProfiler().profile(trace)
        assert any(e.overflow.count for e in profile.entries.values())
        buffer = io.StringIO()
        save_leap(profile, buffer)
        buffer.seek(0)
        loaded = load_leap(buffer)
        for key, entry in profile.entries.items():
            assert loaded.entries[key].overflow.count == entry.overflow.count
            assert loaded.entries[key].overflow.minimum == entry.overflow.minimum

    def test_wrong_format_rejected(self, simple_trace):
        profile = WhompProfiler().profile(simple_trace)
        buffer = io.StringIO()
        save_whomp(profile, buffer)
        buffer.seek(0)
        with pytest.raises(ProfileFormatError):
            load_leap(buffer)


class TestDependenceIO:
    def test_round_trip(self, list_trace):
        profile = LosslessDependenceProfiler().profile(list_trace)
        buffer = io.StringIO()
        save_dependence(profile, buffer)
        buffer.seek(0)
        loaded = load_dependence(buffer)
        assert loaded.conflicts == profile.conflicts
        assert loaded.load_counts == profile.load_counts
        assert loaded.store_counts == profile.store_counts
        assert loaded.dependent_pairs() == profile.dependent_pairs()

    def test_wrong_format_rejected(self):
        with pytest.raises(ProfileFormatError):
            load_dependence(io.StringIO('{"format": "other"}'))


class TestProductionExpansion:
    """Regression tests for the iterative grammar expansion.

    The recursive implementation hit Python's ~1000-frame recursion
    limit on deep-but-valid rule chains (its own ``depth > 10_000``
    guard was unreachable); expansion must now handle arbitrary depth
    while still rejecting true cycles.
    """

    @staticmethod
    def _chain(depth, terminal=7):
        productions = {str(i): [["R", i + 1]] for i in range(depth - 1)}
        productions[str(depth - 1)] = [["T", terminal]]
        return {"start": 0, "productions": productions}

    def test_deep_chain_expands(self):
        from repro.core.profile_io import _expand_productions

        assert _expand_productions(self._chain(5000)) == [7]

    def test_deep_chain_loads_as_whomp_stream(self):
        document = {
            "format": "whomp",
            "version": 1,
            "access_count": 1,
            "grammars": {name: self._chain(3000) for name in DIMENSIONS},
            "base_addresses": [],
            "lifetimes": [],
            "group_labels": {},
        }
        loaded = load_whomp_streams(io.StringIO(json.dumps(document)))
        assert all(stream == [7] for stream in loaded["streams"].values())

    def test_two_rule_cycle_rejected(self):
        from repro.core.profile_io import _expand_productions

        cyclic = {
            "start": 0,
            "productions": {"0": [["R", 1]], "1": [["R", 0]]},
        }
        with pytest.raises(ProfileFormatError, match="cycle"):
            _expand_productions(cyclic)

    def test_self_cycle_rejected(self):
        from repro.core.profile_io import _expand_productions

        with pytest.raises(ProfileFormatError, match="cycle"):
            _expand_productions(
                {"start": 0, "productions": {"0": [["T", 1], ["R", 0]]}}
            )

    def test_repeated_sibling_reference_is_not_a_cycle(self):
        from repro.core.profile_io import _expand_productions

        document = {
            "start": 0,
            "productions": {"0": [["R", 1], ["R", 1]], "1": [["T", 4]]},
        }
        assert _expand_productions(document) == [4, 4]

    def test_undefined_rule_rejected(self):
        from repro.core.profile_io import _expand_productions

        with pytest.raises(ProfileFormatError, match="undefined"):
            _expand_productions({"start": 0, "productions": {"0": [["R", 9]]}})

    def test_bad_tag_rejected(self):
        from repro.core.profile_io import _expand_productions

        with pytest.raises(ProfileFormatError, match="tag"):
            _expand_productions({"start": 0, "productions": {"0": [["X", 1]]}})

    def test_expansion_bomb_capped(self):
        # A doubling grammar describes 2**40 symbols in 40 rules; the
        # loader must abort at its cap instead of materializing it.
        from repro.core.profile_io import _expand_productions

        productions = {"39": [["T", 1], ["T", 1]]}
        for rule in range(39):
            productions[str(rule)] = [["R", rule + 1], ["R", rule + 1]]
        with pytest.raises(ProfileFormatError, match="expands"):
            _expand_productions(
                {"start": 0, "productions": productions}, max_symbols=10_000
            )


@pytest.mark.faults
class TestFuzzedLoading:
    """Fuzz the loaders with the fault harness: any damaged input must
    raise :class:`ProfileFormatError` -- never a raw ``KeyError`` /
    ``TypeError`` / ``RecursionError`` escaping the decoder, and never
    a silently inconsistent profile."""

    @pytest.fixture(scope="class")
    def whomp_text(self, list_trace):
        buffer = io.StringIO()
        save_whomp(WhompProfiler().profile(list_trace), buffer)
        return buffer.getvalue()

    @pytest.fixture(scope="class")
    def leap_text(self, list_trace):
        buffer = io.StringIO()
        save_leap(LeapProfiler().profile(list_trace), buffer)
        return buffer.getvalue()

    def test_truncation_always_rejected(self, whomp_text, leap_text):
        for text, loader in ((whomp_text, load_whomp_streams),
                             (leap_text, load_leap)):
            step = max(1, len(text) // 97)  # ~100 cut points incl. 0
            for cut in range(0, len(text), step):
                with pytest.raises(ProfileFormatError):
                    loader(io.StringIO(text[:cut]))

    def test_bit_flips_never_escape_format_error(self, tmp_path, whomp_text, leap_text):
        from repro.core.profile_io import load
        from repro.resilience import FaultInjector, parse_fault_spec

        path = tmp_path / "fuzzed.json"
        for text in (whomp_text, leap_text):
            data = text.encode("utf-8")
            for seed in range(40):
                injector = FaultInjector(
                    parse_fault_spec(f"seed={seed};flip-profile=3")
                )
                path.write_bytes(injector.corrupt_bytes(data))
                try:
                    load(str(path))
                except ProfileFormatError:
                    pass  # the only acceptable exception

    def test_oversized_access_count_rejected(self, whomp_text):
        document = json.loads(whomp_text)
        document["access_count"] = document["access_count"] + 1
        with pytest.raises(ProfileFormatError):
            load_whomp_streams(io.StringIO(json.dumps(document)))

    def test_negative_access_count_rejected(self, whomp_text):
        document = json.loads(whomp_text)
        document["access_count"] = -1
        with pytest.raises(ProfileFormatError):
            load_whomp_streams(io.StringIO(json.dumps(document)))

    def test_leap_count_mismatch_rejected(self, leap_text):
        document = json.loads(leap_text)
        entry = document["entries"][0]
        entry["total"] = entry["total"] + 5
        with pytest.raises(ProfileFormatError):
            load_leap(io.StringIO(json.dumps(document)))

    def test_missing_dimension_rejected(self, whomp_text):
        document = json.loads(whomp_text)
        del document["grammars"][DIMENSIONS[0]]
        with pytest.raises(ProfileFormatError):
            load_whomp_streams(io.StringIO(json.dumps(document)))

    def test_non_json_and_non_object_documents_rejected(self):
        for text in ("", "not json", "[1, 2, 3]", '"a string"', "null"):
            with pytest.raises(ProfileFormatError):
                load_whomp_streams(io.StringIO(text))

    def test_load_missing_file_rejected(self, tmp_path):
        from repro.core.profile_io import load

        with pytest.raises(ProfileFormatError):
            load(str(tmp_path / "absent.json"))


class TestBytesAPI:
    """dumps_bytes / loads_bytes / document_from_bytes across encodings."""

    def _profiles(self, list_trace):
        leap = LeapProfiler().profile(list_trace)
        return [
            WhompProfiler().profile(list_trace),
            leap,
            analyze_dependences(leap),
        ]

    def test_bytes_round_trip_both_encodings(self, list_trace):
        from repro.core.profile_io import (
            document_from_bytes,
            dumps,
            dumps_bytes,
            loads_bytes,
        )

        for profile in self._profiles(list_trace):
            expected = json.loads(dumps(profile))
            for fmt in ("json", "binary"):
                data = dumps_bytes(profile, fmt)
                assert document_from_bytes(data) == expected
                reloaded = loads_bytes(data)
                if fmt == "binary":
                    assert data[:1] == b"\x89"
                if not isinstance(reloaded, dict):  # WHOMP loads as a dict
                    assert json.loads(dumps(reloaded)) == expected

    def test_sniff_format_routes_both_encodings(self, list_trace):
        from repro.core.profile_io import dumps, dumps_bytes, sniff_format

        kinds = ("whomp", "leap", "dependence")
        for kind, profile in zip(kinds, self._profiles(list_trace)):
            assert sniff_format(dumps(profile)) == kind
            assert sniff_format(dumps_bytes(profile, "json")) == kind
            assert sniff_format(dumps_bytes(profile, "binary")) == kind

    def test_sniff_format_rejects_junk(self):
        from repro.core.profile_io import sniff_format

        for payload in (b"", b"\x89RPBnope", b"\xff\xfe\x00", '{"format": "x"}'):
            with pytest.raises(ProfileFormatError):
                sniff_format(payload)

    def test_save_load_binary_file(self, tmp_path, list_trace):
        from repro.core.profile_io import dumps, load, save

        profile = LeapProfiler().profile(list_trace)
        path = str(tmp_path / "trace.leap.bin")
        save(profile, path, fmt="binary")
        with open(path, "rb") as handle:
            assert handle.read(1) == b"\x89"
        assert json.loads(dumps(load(path))) == json.loads(dumps(profile))

    def test_unknown_serialization_rejected(self, list_trace):
        from repro.core.profile_io import dumps_bytes

        profile = LeapProfiler().profile(list_trace)
        with pytest.raises(ValueError):
            dumps_bytes(profile, "msgpack")
