"""The paper's motivation, demonstrated: layout artifacts vs invariance.

The same workload (identical logical behaviour) is run under different
allocator policies, OS base offsets, and probe paddings.  The raw
address stream changes every time; the object-relative tuple stream is
bit-identical across all runs -- which is exactly why object-relative
profiles are stable run-to-run and raw-address profiles are not
(Section 1). Run with::

    python examples/allocator_artifacts.py
"""

import hashlib

from repro import translate_trace_list
from repro.workloads.registry import create


def stream_digest(values) -> str:
    hasher = hashlib.sha256()
    for value in values:
        hasher.update(repr(value).encode())
    return hasher.hexdigest()[:16]


def main() -> None:
    configurations = [
        ("first-fit allocator", dict(allocator="first-fit")),
        ("best-fit allocator", dict(allocator="best-fit")),
        ("segregated allocator", dict(allocator="segregated")),
        ("bump allocator", dict(allocator="bump")),
        ("probe padding +64KiB", dict(allocator="first-fit", probe_padding=1 << 16)),
        ("OS offset +1MiB", dict(allocator="first-fit", os_offset=1 << 20)),
    ]
    print("linked-list workload (interleaved malloc/free) under six "
          "layouts\n(same program, same input):\n")
    print(f"{'configuration':<24} {'raw-address stream':>20} {'object-relative':>18}")
    digests = []
    for label, knobs in configurations:
        trace = create("micro.list", scale=1.0).trace(**knobs)
        raw = stream_digest(trace.raw_address_stream())
        translated = translate_trace_list(trace)
        object_relative = stream_digest(
            (a.instruction_id, a.group, a.object_serial, a.offset)
            for a in translated
        )
        digests.append((raw, object_relative))
        print(f"{label:<24} {raw:>20} {object_relative:>18}")

    raw_digests = {raw for raw, __ in digests}
    objrel_digests = {objrel for __, objrel in digests}
    print(f"\ndistinct raw streams:             {len(raw_digests)} / 6")
    print(f"distinct object-relative streams: {len(objrel_digests)} / 6")
    assert len(objrel_digests) == 1, "object-relative stream should be invariant"
    print("\nThe object-relative stream is invariant: every artifact the "
          "paper\nlists (allocator, linker/probe, OS) has been factored out.")


if __name__ == "__main__":
    main()
