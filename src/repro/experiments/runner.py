"""Experiment runner CLI.

Regenerates every figure and table of the paper's evaluation::

    repro-experiments --all
    repro-experiments fig5 fig8 --scale 0.5
    python -m repro.experiments.runner table1

Results print as paper-style text tables and histograms; ``--json``
writes the structured results to a file as well.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List

from repro.experiments import fig3, fig5, fig6, fig7, fig8, fig9, table1
from repro.experiments.context import SuiteContext

EXPERIMENTS = {
    "fig3": (fig3.run, fig3.render),
    "fig5": (fig5.run, fig5.render),
    "fig6": (fig6.run, fig6.render),
    "fig7": (fig7.run, fig7.render),
    "fig8": (fig8.run, fig8.render),
    "fig9": (fig9.run, fig9.render),
    "table1": (table1.run, table1.render),
}


def _jsonable(value: object) -> object:
    """Strip non-serializable objects (profiles, distributions) down to
    plain data for --json output."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    fractions = getattr(value, "fractions", None)
    if callable(fractions):
        return {
            "fractions": fractions(),
            "total_pairs": getattr(value, "total_pairs", None),
        }
    return repr(value)


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's figures and tables.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help=f"which experiments to run: {', '.join(EXPERIMENTS)}, all "
        "(default: all)",
    )
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload scale factor (default 1.0 = paper-shape calibration)",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    parser.add_argument(
        "--no-speed",
        action="store_true",
        help="skip the wall-clock dilation measurement in table1",
    )
    parser.add_argument("--json", metavar="PATH", help="also write results as JSON")
    args = parser.parse_args(argv)

    names = list(args.experiments)
    unknown = [n for n in names if n not in EXPERIMENTS and n != "all"]
    if unknown:
        parser.error(
            f"unknown experiment(s) {', '.join(unknown)}; "
            f"choose from {', '.join(EXPERIMENTS)} or all"
        )
    if args.all or "all" in names or not names:
        names = list(EXPERIMENTS)

    context = SuiteContext(scale=args.scale, seed=args.seed)
    collected: Dict[str, object] = {}
    for name in names:
        run, render = EXPERIMENTS[name]
        start = time.perf_counter()
        if name == "table1":
            results = run(context, measure_speed=not args.no_speed)
        else:
            results = run(context)
        elapsed = time.perf_counter() - start
        collected[name] = results
        print(render(results))
        print(f"[{name} completed in {elapsed:.1f}s]\n")

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(_jsonable(collected), handle, indent=2)
        print(f"JSON results written to {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
