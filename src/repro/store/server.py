"""The PROFSTORE serving daemon: a concurrent JSON API over one store.

Stdlib-only (``http.server.ThreadingHTTPServer``), because the repo has
no dependencies and the workload -- a profile registry queried by build
bots and developers -- fits comfortably in threaded Python: requests
are I/O plus cached decodes, and the decoded-profile LRU keeps the hot
runs resident.

Endpoints (all JSON unless noted)::

    GET  /healthz                     liveness + store snapshot
    GET  /metricsz                    telemetry counters/gauges + cache stats
    POST /ingest?workload=NAME        body = profile document; 400 on corrupt
    GET  /get?run=SELECTOR            the exact stored document (bit-identical)
    GET  /query/runs?workload=&kind=  manifest rows
    GET  /query/entries?...           per-(instruction, group) LEAP rows
    GET  /query/shapes?run=SELECTOR   LMAD stride fingerprint of one run
    GET  /diff?a=SEL&b=SEL            structural diff + regression verdicts
    POST /gc                          drop unreferenced blobs

Run selectors are what :meth:`repro.store.store.ProfileStore.resolve`
accepts (run ids, digest prefixes, ``workload@kind[~N]``).

Concurrency is bounded: a semaphore of ``max_concurrent`` gates the
request bodies, so a stampede queues in the accept backlog instead of
oversubscribing the process.  Every endpoint is telemetry-threaded --
per-endpoint request/error counters, a latency histogram, and a span
per endpoint accumulated under ``serve/`` -- guarded by one lock
because the registry itself is single-threaded by design.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.core.profile_io import ProfileFormatError
from repro.store.diff import detect_regressions, diff_texts
from repro.store.query import QueryEngine
from repro.store.store import ProfileStore
from repro.telemetry import Telemetry, coalesce

#: default cap on concurrently served request bodies
DEFAULT_MAX_CONCURRENT = 8

#: request-latency histogram buckets (seconds)
LATENCY_BUCKETS = tuple(0.0001 * (4 ** p) for p in range(8))


class _Metrics:
    """Thread-safe telemetry facade for the handler threads."""

    def __init__(self, telemetry: Telemetry) -> None:
        self.telemetry = telemetry
        self.lock = threading.Lock()

    def record(self, endpoint: str, status: int, seconds: float) -> None:
        if not self.telemetry.enabled:
            return
        with self.lock:
            self.telemetry.counter(
                "store.http.requests_total", "requests served"
            ).inc()
            self.telemetry.counter(
                f"store.http.{endpoint}_total", f"requests to {endpoint}"
            ).inc()
            if status >= 400:
                self.telemetry.counter(
                    "store.http.errors_total", "requests answered >= 400"
                ).inc()
            self.telemetry.histogram(
                "store.http.latency_seconds",
                "request wall time",
                bounds=LATENCY_BUCKETS,
            ).observe(seconds)
            # Span accumulation without the (thread-hostile) context
            # stack: one child per endpoint under serve/.
            span = self.telemetry.root.child("serve").child(endpoint)
            span.calls += 1
            span.seconds += seconds
            span.add_items(1, "requests")


class StoreServer:
    """The daemon: owns the HTTP server, the store, and the telemetry."""

    def __init__(
        self,
        store: ProfileStore,
        host: str = "127.0.0.1",
        port: int = 0,
        telemetry: Optional[Telemetry] = None,
        max_concurrent: int = DEFAULT_MAX_CONCURRENT,
    ) -> None:
        self.store = store
        self.query = QueryEngine(store)
        self.telemetry = coalesce(telemetry)
        self.metrics = _Metrics(self.telemetry)
        self.started = time.time()
        self._gate = threading.BoundedSemaphore(max(1, max_concurrent))
        self.max_concurrent = max(1, max_concurrent)

        server = self

        class Handler(BaseHTTPRequestHandler):
            # quiet by default: the daemon's own telemetry replaces the
            # per-request stderr log lines
            def log_message(self, format, *args):  # noqa: A002
                pass

            def do_GET(self):  # noqa: N802
                server.handle(self, "GET")

            def do_POST(self):  # noqa: N802
                server.handle(self, "POST")

        self.httpd = ThreadingHTTPServer((host, port), Handler)
        self.httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        return self.httpd.server_address[0], self.httpd.server_address[1]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "StoreServer":
        """Serve in a background thread (tests, embedded use)."""
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI's foreground mode)."""
        self.httpd.serve_forever()

    def stop(self) -> None:
        self.httpd.shutdown()
        if self._thread is not None:
            self._thread.join()
        self.httpd.server_close()

    # -- dispatch ------------------------------------------------------

    def handle(self, request: BaseHTTPRequestHandler, method: str) -> None:
        parsed = urlparse(request.path)
        endpoint = parsed.path.strip("/").replace("/", "_") or "root"
        params = {
            key: values[-1] for key, values in parse_qs(parsed.query).items()
        }
        start = time.perf_counter()
        with self._gate:
            try:
                status, payload = self.route(request, method, parsed.path, params)
            except (KeyError, ProfileFormatError, ValueError) as exc:
                kind = 404 if isinstance(exc, KeyError) else 400
                status, payload = kind, {"error": str(exc).strip("'\"")}
            except Exception as exc:  # noqa: BLE001 - the daemon survives
                status, payload = 500, {
                    "error": f"{type(exc).__name__}: {exc}"
                }
        elapsed = time.perf_counter() - start
        self.metrics.record(endpoint, status, elapsed)
        body = json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"
        try:
            request.send_response(status)
            request.send_header("Content-Type", "application/json")
            request.send_header("Content-Length", str(len(body)))
            request.end_headers()
            request.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; nothing to clean up

    def route(
        self,
        request: BaseHTTPRequestHandler,
        method: str,
        path: str,
        params: Dict[str, str],
    ) -> Tuple[int, object]:
        if path == "/healthz" and method == "GET":
            snapshot = self.store.stats()
            snapshot.update(
                status="ok",
                uptime_seconds=time.time() - self.started,
                max_concurrent=self.max_concurrent,
            )
            return 200, snapshot
        if path == "/metricsz" and method == "GET":
            return 200, self._metricsz()
        if path == "/ingest" and method == "POST":
            return self._ingest(request, params)
        if path == "/get" and method == "GET":
            text = self.store.get_text(self._required(params, "run"))
            return 200, json.loads(text)
        if path == "/query/runs" and method == "GET":
            return 200, {
                "runs": self.query.find_runs(
                    workload=params.get("workload"), kind=params.get("kind")
                )
            }
        if path == "/query/entries" and method == "GET":
            return 200, {
                "entries": self.query.find_entries(
                    workload=params.get("workload"),
                    instruction=self._int(params, "instruction"),
                    group=self._int(params, "group"),
                    stride=self._stride(params),
                    min_count=self._int(params, "min_count") or 0,
                    run=params.get("run"),
                )
            }
        if path == "/query/shapes" and method == "GET":
            return 200, {
                "shapes": self.query.lmad_shapes(self._required(params, "run"))
            }
        if path == "/diff" and method == "GET":
            return 200, self._diff(params)
        if path == "/gc" and method == "POST":
            stats = self.store.gc()
            return 200, {
                "scanned": stats.scanned,
                "removed": stats.removed,
                "freed_bytes": stats.freed_bytes,
            }
        return 404, {"error": f"no such endpoint: {method} {path}"}

    # -- endpoint bodies -----------------------------------------------

    def _metricsz(self) -> Dict[str, object]:
        counters: Dict[str, object] = {}
        gauges: Dict[str, object] = {}
        with self.metrics.lock:
            for metric in self.telemetry.registry:
                kind = getattr(metric, "kind", None)
                if kind == "counter":
                    counters[metric.name] = metric.value
                elif kind == "gauge":
                    gauges[metric.name] = metric.value
            latency = self.telemetry.registry.get("store.http.latency_seconds")
            latency_summary = None
            if latency is not None and getattr(latency, "count", 0):
                latency_summary = {
                    "count": latency.count,
                    "mean_seconds": latency.mean,
                    "max_seconds": latency.maximum,
                }
        hits, misses, evictions = self.store.cache.stats()
        return {
            "counters": counters,
            "gauges": gauges,
            "latency": latency_summary,
            "cache": {
                "hits": hits,
                "misses": misses,
                "evictions": evictions,
                "hit_rate": self.store.cache.hit_rate,
            },
        }

    def _ingest(
        self, request: BaseHTTPRequestHandler, params: Dict[str, str]
    ) -> Tuple[int, object]:
        workload = self._required(params, "workload")
        length = int(request.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ValueError("ingest requires a profile document body")
        data = request.rfile.read(length)
        meta = {"source": "http"}
        record = self.store.ingest_bytes(data, workload, meta=meta)
        if self.telemetry.enabled:
            with self.metrics.lock:
                self.telemetry.counter(
                    "store.ingested_total", "profiles ingested"
                ).inc()
                self.telemetry.counter(
                    "store.ingested_bytes_total", "profile bytes ingested"
                ).inc(len(data))
        return 201, {
            "run_id": record.run_id,
            "digest": record.digest,
            "kind": record.kind,
            "size_bytes": record.size_bytes,
        }

    def _diff(self, params: Dict[str, str]) -> Dict[str, object]:
        selector_a = self._required(params, "a")
        selector_b = self._required(params, "b")
        record_a = self.store.resolve(selector_a)
        record_b = self.store.resolve(selector_b)
        diff = diff_texts(
            self.store.get_text(record_a.run_id),
            self.store.get_text(record_b.run_id),
            label_a=record_a.run_id,
            label_b=record_b.run_id,
        )
        regressions = detect_regressions(diff)
        payload = diff.to_json()
        payload["regressions"] = [r.to_json() for r in regressions]
        return payload

    # -- parameter helpers ---------------------------------------------

    @staticmethod
    def _required(params: Dict[str, str], name: str) -> str:
        value = params.get(name)
        if not value:
            raise ValueError(f"missing required parameter {name!r}")
        return value

    @staticmethod
    def _int(params: Dict[str, str], name: str) -> Optional[int]:
        value = params.get(name)
        if value is None:
            return None
        try:
            return int(value)
        except ValueError:
            raise ValueError(f"parameter {name!r} must be an integer") from None

    @staticmethod
    def _stride(params: Dict[str, str]) -> Optional[Tuple[int, ...]]:
        value = params.get("stride")
        if value is None:
            return None
        try:
            return tuple(int(part) for part in value.split(",") if part != "")
        except ValueError:
            raise ValueError(
                "parameter 'stride' must be comma-separated integers"
            ) from None
