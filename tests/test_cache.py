"""Tests for the cache simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.cache import (
    CacheConfig,
    CacheHierarchy,
    SetAssociativeCache,
    SimulationComparison,
    simulate,
)


class TestConfig:
    def test_num_sets(self):
        config = CacheConfig(size_bytes=32 * 1024, line_bytes=64, associativity=4)
        assert config.num_sets == 128

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ValueError):
            CacheConfig(line_bytes=48)

    def test_rejects_bad_associativity(self):
        with pytest.raises(ValueError):
            CacheConfig(associativity=0)

    def test_rejects_non_multiple_size(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, line_bytes=64, associativity=4)


class TestCacheBasics:
    def cache(self, **kwargs):
        return SetAssociativeCache(CacheConfig(**kwargs))

    def test_cold_miss_then_hit(self):
        cache = self.cache(size_bytes=1024, line_bytes=64, associativity=2)
        assert cache.access(0) is False
        assert cache.access(0) is True
        assert cache.access(63) is True  # same line
        assert cache.access(64) is False  # next line

    def test_lru_eviction(self):
        # 2-way set: three conflicting lines evict the least recent
        cache = self.cache(size_bytes=128, line_bytes=64, associativity=2)
        a, b, c = 0, 64, 128  # hmm: with 1 set, all lines conflict
        cache.access(a)
        cache.access(b)
        cache.access(a)  # a is now MRU
        cache.access(c)  # evicts b
        assert cache.access(a) is True
        assert cache.access(b) is False

    def test_direct_mapped_conflicts(self):
        cache = self.cache(size_bytes=128, line_bytes=64, associativity=1)
        # two lines mapping to the same set thrash
        cache.access(0)
        cache.access(128)
        assert cache.access(0) is False

    def test_stats_accounting(self):
        cache = self.cache(size_bytes=1024, line_bytes=64, associativity=2)
        for address in (0, 0, 64, 0):
            cache.access(address)
        assert cache.stats.accesses == 4
        assert cache.stats.hits == 2
        assert cache.stats.misses == 2
        assert cache.stats.miss_rate == pytest.approx(0.5)
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_reset(self):
        cache = self.cache(size_bytes=1024, line_bytes=64, associativity=2)
        cache.access(0)
        cache.reset()
        assert cache.stats.accesses == 0
        assert cache.access(0) is False

    def test_empty_stats(self):
        cache = self.cache(size_bytes=1024, line_bytes=64, associativity=2)
        assert cache.stats.miss_rate == 0.0


class TestPrefetch:
    def test_prefetch_turns_miss_into_hit(self):
        cache = SetAssociativeCache(CacheConfig(1024, 64, 2))
        cache.prefetch(0)
        assert cache.access(0) is True
        assert cache.stats.prefetches == 1
        assert cache.stats.prefetch_hits == 1

    def test_prefetch_does_not_count_demand_access(self):
        cache = SetAssociativeCache(CacheConfig(1024, 64, 2))
        cache.prefetch(0)
        assert cache.stats.accesses == 0

    def test_prefetch_of_resident_line_is_noop(self):
        cache = SetAssociativeCache(CacheConfig(1024, 64, 2))
        cache.access(0)
        cache.prefetch(0)
        cache.access(0)
        assert cache.stats.prefetch_hits == 0


class TestHierarchy:
    def test_l2_catches_l1_conflicts(self):
        hierarchy = CacheHierarchy(
            [CacheConfig(128, 64, 1), CacheConfig(1024, 64, 4)]
        )
        assert hierarchy.access(0) == 2  # memory
        assert hierarchy.access(128) == 2
        # 0 evicted from L1 (direct-mapped conflict) but still in L2
        assert hierarchy.access(0) == 1

    def test_l1_hit(self):
        hierarchy = CacheHierarchy([CacheConfig(1024, 64, 2)])
        hierarchy.access(0)
        assert hierarchy.access(0) == 0
        assert hierarchy.l1.stats.hits == 1

    def test_needs_levels(self):
        with pytest.raises(ValueError):
            CacheHierarchy([])


class TestSimulate:
    def test_sequential_stream_mostly_hits(self):
        addresses = [i for i in range(0, 8192, 8)]
        stats = simulate(addresses, CacheConfig(4096, 64, 4))
        # one miss per 64-byte line, 8 accesses per line
        assert stats.miss_rate == pytest.approx(1 / 8)

    def test_prefetch_requires_instruction_stream(self):
        with pytest.raises(ValueError):
            simulate([0, 8], CacheConfig(), prefetch_for={0: 8})

    def test_comparison_reduction(self):
        baseline = simulate([i * 64 for i in range(100)], CacheConfig(1024, 64, 2))
        optimized = simulate([0] * 100, CacheConfig(1024, 64, 2))
        comparison = SimulationComparison(baseline, optimized)
        assert comparison.miss_reduction > 0.9

    def test_comparison_zero_baseline(self):
        stats = simulate([0, 0], CacheConfig(1024, 64, 2))
        comparison = SimulationComparison(stats, stats)
        assert comparison.miss_reduction <= 0.5  # defined, no crash


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(0, 1 << 16), max_size=200))
def test_cache_property_counts(addresses):
    cache = SetAssociativeCache(CacheConfig(2048, 64, 2))
    for address in addresses:
        cache.access(address)
    stats = cache.stats
    assert stats.hits + stats.misses == stats.accesses == len(addresses)
    # misses are at least the number of distinct lines touched... no:
    # at least the number of distinct lines (cold misses), and at most
    # the total accesses
    distinct_lines = len({a // 64 for a in addresses})
    assert stats.misses >= min(distinct_lines, stats.accesses)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 4096), max_size=150))
def test_bigger_cache_never_misses_more_with_same_assoc_full(addresses):
    """A fully-associative (single-set) LRU cache has the inclusion
    property: more ways can only reduce misses."""
    small = SetAssociativeCache(CacheConfig(2 * 64, 64, 2))
    large = SetAssociativeCache(CacheConfig(8 * 64, 64, 8))
    for address in addresses:
        small.access(address)
        large.access(address)
    assert large.stats.misses <= small.stats.misses
