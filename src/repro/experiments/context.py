"""Shared state for the experiment harness.

Traces and profiles are the expensive inputs shared by several
experiments (the Figure 6/7/8 trio all consume the same LEAP profiles
and ground truth), so :class:`SuiteContext` computes each lazily, once,
per benchmark.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.baselines.connors import DEFAULT_WINDOW, ConnorsProfiler
from repro.baselines.dependence_lossless import (
    DependenceProfile,
    LosslessDependenceProfiler,
)
from repro.baselines.rasg import RasgProfile, RasgProfiler
from repro.baselines.stride_lossless import LosslessStrideProfiler, StrideProfile
from repro.core.events import Trace
from repro.profilers.leap import LeapProfile, LeapProfiler
from repro.profilers.whomp import WhompProfile, WhompProfiler
from repro.workloads.base import Workload
from repro.workloads.registry import SPEC_BENCHMARKS, create


class SuiteContext:
    """Lazily computed per-benchmark traces and profiles."""

    def __init__(
        self,
        scale: float = 1.0,
        seed: int = 0,
        benchmarks: Sequence[str] = SPEC_BENCHMARKS,
        allocator: str = "first-fit",
        telemetry=None,
        fault_injector=None,
    ) -> None:
        self.scale = scale
        self.seed = seed
        self.benchmarks = tuple(benchmarks)
        self.allocator = allocator
        self.telemetry = telemetry
        #: fault drills: traces are damaged per the injector's plan and
        #: the profilers run in degraded mode behind a shared quarantine
        self.fault_injector = fault_injector
        self.quarantine = None
        if fault_injector is not None and fault_injector.plan.any_event_faults():
            from repro.resilience.degraded import Quarantine

            self.quarantine = Quarantine()
        self._traces: Dict[str, Trace] = {}
        self._whomp: Dict[str, WhompProfile] = {}
        self._rasg: Dict[str, RasgProfile] = {}
        self._leap: Dict[str, LeapProfile] = {}
        self._truth_dependence: Dict[str, DependenceProfile] = {}
        self._connors: Dict[tuple, DependenceProfile] = {}
        self._stride_real: Dict[str, StrideProfile] = {}

    def workload(self, name: str) -> Workload:
        return create(name, scale=self.scale, seed=self.seed)

    def trace(self, name: str) -> Trace:
        if name not in self._traces:
            trace = self.workload(name).trace(
                allocator=self.allocator, telemetry=self.telemetry
            )
            if self.fault_injector is not None:
                trace = self.fault_injector.corrupt_trace(trace)
            self._traces[name] = trace
        return self._traces[name]

    def whomp(self, name: str) -> WhompProfile:
        if name not in self._whomp:
            self._whomp[name] = WhompProfiler(
                telemetry=self.telemetry, quarantine=self.quarantine
            ).profile(self.trace(name))
        return self._whomp[name]

    def rasg(self, name: str) -> RasgProfile:
        if name not in self._rasg:
            self._rasg[name] = RasgProfiler().profile(self.trace(name))
        return self._rasg[name]

    def leap(self, name: str) -> LeapProfile:
        if name not in self._leap:
            self._leap[name] = LeapProfiler(
                telemetry=self.telemetry, quarantine=self.quarantine
            ).profile(self.trace(name))
        return self._leap[name]

    def truth_dependence(self, name: str) -> DependenceProfile:
        if name not in self._truth_dependence:
            self._truth_dependence[name] = LosslessDependenceProfiler().profile(
                self.trace(name)
            )
        return self._truth_dependence[name]

    def connors(
        self, name: str, window: Optional[int] = None
    ) -> DependenceProfile:
        key = (name, window or DEFAULT_WINDOW)
        if key not in self._connors:
            self._connors[key] = ConnorsProfiler(window=key[1]).profile(
                self.trace(name)
            )
        return self._connors[key]

    def stride_real(self, name: str) -> StrideProfile:
        if name not in self._stride_real:
            self._stride_real[name] = LosslessStrideProfiler().profile(
                self.trace(name)
            )
        return self._stride_real[name]

    def fault_activity(self) -> bool:
        """Whether any fault actually landed in this context's data:
        events dropped/corrupted by the injector, or tuples
        quarantined by a degraded profiler.  The experiments runner
        reports ``degraded`` status off this."""
        injector = self.fault_injector
        if injector is not None and (injector.dropped or injector.corrupted):
            return True
        return self.quarantine is not None and self.quarantine.total > 0
