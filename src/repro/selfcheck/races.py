"""Lockset race detection over thread-shared classes (RL101-RL105).

The model is deliberately lockset-lite: within a thread-shared class
(see :mod:`repro.selfcheck.classmodel`), every attribute mutation
outside ``__init__`` context must execute under *some* held lock, a
method reading two or more lock-guarded attributes without the lock is
a torn snapshot, and blocking I/O must not run while a state lock is
held (a dedicated ``*_sink_lock`` / ``*_io_lock`` exists to serialize
I/O and is exempt -- holding one is the fix, not the bug).

Classes annotated ``# repro: synchronized-externally`` declare the
@GuardedBy-style contract that their owner's lock protects them; their
internals are exempt, but calls *into* them from a shared class are
checked instead (RL104).
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Optional, Set

from repro.selfcheck.classmodel import (
    ClassIndex,
    ClassInfo,
    _init_like_methods,
    is_io_lock_name,
    mutated_self_attr,
)
from repro.selfcheck.findings import FindingSink
from repro.selfcheck.loader import SourceModule, dotted_name
from repro.selfcheck.locks import EMPTY, LockTracker, inherited_locksets

#: calls that block on the filesystem, the network, or the clock --
#: matched on the full dotted name or its final segment for the
#: project's own atomic-write primitives
_IO_CALL_NAMES = frozenset(
    {
        "open",
        "os.fdopen",
        "os.replace",
        "os.rename",
        "os.unlink",
        "os.remove",
        "os.fsync",
        "os.makedirs",
        "time.sleep",
        "socket.socket",
        "urllib.request.urlopen",
    }
)
_IO_CALL_SUFFIXES = frozenset({"atomic_write_text", "atomic_write_bytes"})


def _is_io_call(node: ast.Call) -> Optional[str]:
    name = dotted_name(node.func)
    if name is None:
        return None
    if name in _IO_CALL_NAMES:
        return name
    tail = name.rsplit(".", 1)[-1]
    if tail in _IO_CALL_SUFFIXES:
        return name
    return None


def _state_locks(held: FrozenSet[str]) -> FrozenSet[str]:
    """Held locks that guard in-memory state (io-serialization locks
    are exempt from the I/O-under-lock rule)."""
    return frozenset(
        key for key in held if not is_io_lock_name(key.rsplit(".", 1)[-1])
    )


def _walk_method(
    tracker: LockTracker, method: ast.FunctionDef, start: FrozenSet[str]
):
    for node, held in tracker.walk(method, start):
        if isinstance(node, ast.ClassDef):
            continue  # a nested class has its own, unrelated ``self``
        yield node, held


def check_module_races(
    module: SourceModule,
    index: ClassIndex,
    shared: Set[str],
    sink: FindingSink,
) -> None:
    for node in module.tree.body:
        if isinstance(node, ast.ClassDef):
            info = index.get(f"{module.name}.{node.name}") or index.get(
                node.name
            )
            if info is None or info.module is not module:
                continue
            _check_class(info, index, shared, sink)
    _check_io_in_functions(module, index, sink)


def _check_class(
    info: ClassInfo,
    index: ClassIndex,
    shared: Set[str],
    sink: FindingSink,
) -> None:
    is_shared = info.name in shared
    if info.synchronized_externally:
        return  # contract: the owner's lock guards it (RL104 at call sites)
    inherited = inherited_locksets(info, index)
    init_like = _init_like_methods(info)
    guarded = info.guarded_attrs()
    tracker = LockTracker(info, index)

    if is_shared and not info.lock_attrs and guarded:
        sink.report(
            "RL105",
            info.node.lineno,
            info.node.col_offset,
            f"thread-shared class {info.name!r} mutates "
            f"{_attrs_text(guarded)} but owns no lock; add one or annotate "
            f"'# repro: synchronized-externally' with the owning lock",
            symbol=info.name,
            detail=",".join(sorted(guarded)),
        )
        return  # per-site reports would repeat the same story

    for method_name, method in info.methods.items():
        start = inherited.get(method_name, EMPTY)
        in_init = method_name in init_like
        unguarded_reads: Dict[str, ast.Attribute] = {}
        for node, held in _walk_method(tracker, method, start):
            if is_shared and not in_init:
                found = mutated_self_attr(node)
                if found is not None:
                    attr_name, site = found
                    attr = info.attrs.get(attr_name)
                    if (
                        not held
                        and attr is not None
                        and not attr.is_lock
                    ):
                        sink.report(
                            "RL101",
                            site.lineno,
                            site.col_offset,
                            f"attribute 'self.{attr_name}' of thread-shared "
                            f"{info.name!r} is mutated outside any lock-held "
                            f"region",
                            symbol=f"{info.name}.{method_name}",
                            detail=attr_name,
                        )
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.ctx, ast.Load)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                    and node.attr in guarded
                    and not held
                ):
                    unguarded_reads.setdefault(node.attr, node)
            if isinstance(node, ast.Call):
                # RL103 everywhere a lock is held, shared or not
                io_name = _is_io_call(node)
                state_locks = _state_locks(held)
                if io_name is not None and state_locks:
                    sink.report(
                        "RL103",
                        node.lineno,
                        node.col_offset,
                        f"blocking call {io_name}() while holding "
                        f"{_locks_text(state_locks)}; move the I/O outside "
                        f"the lock or serialize it on a dedicated "
                        f"'*_sink_lock'",
                        symbol=f"{info.name}.{method_name}",
                        detail=io_name,
                    )
                if is_shared and not in_init and not held:
                    _check_external_call(node, info, index, sink, method_name)
        if is_shared and not in_init and len(unguarded_reads) >= 2:
            attrs = sorted(unguarded_reads)
            first = min(
                unguarded_reads.values(), key=lambda n: (n.lineno, n.col_offset)
            )
            sink.report(
                "RL102",
                first.lineno,
                first.col_offset,
                f"{info.name}.{method_name} reads {_attrs_text(attrs)} "
                f"outside the lock: the snapshot can tear mid-update",
                symbol=f"{info.name}.{method_name}",
                detail=",".join(attrs),
            )


def _check_external_call(
    node: ast.Call,
    info: ClassInfo,
    index: ClassIndex,
    sink: FindingSink,
    method_name: str,
) -> None:
    """RL104: ``self.attr.method()`` on an externally-guarded object
    without holding any lock."""
    func = node.func
    if not isinstance(func, ast.Attribute):
        return
    receiver = func.value
    if not (
        isinstance(receiver, ast.Attribute)
        and isinstance(receiver.value, ast.Name)
        and receiver.value.id == "self"
    ):
        return
    attr = info.attrs.get(receiver.attr)
    if attr is None:
        return
    held_class = index.get(attr.value_class)
    if held_class is None or not held_class.synchronized_externally:
        return
    sink.report(
        "RL104",
        node.lineno,
        node.col_offset,
        f"call into externally-guarded {held_class.name!r} via "
        f"'self.{receiver.attr}.{func.attr}()' without holding a lock",
        symbol=f"{info.name}.{method_name}",
        detail=f"{receiver.attr}.{func.attr}",
    )


def _check_io_in_functions(
    module: SourceModule, index: ClassIndex, sink: FindingSink
) -> None:
    """RL103 for module-level functions (no class context)."""
    tracker = LockTracker(None, index)
    for node in module.tree.body:
        if not isinstance(node, ast.FunctionDef):
            continue
        for inner, held in tracker.walk(node, EMPTY):
            if isinstance(inner, ast.ClassDef):
                continue
            if isinstance(inner, ast.Call):
                io_name = _is_io_call(inner)
                state_locks = _state_locks(held)
                if io_name is not None and state_locks:
                    sink.report(
                        "RL103",
                        inner.lineno,
                        inner.col_offset,
                        f"blocking call {io_name}() while holding "
                        f"{_locks_text(state_locks)}; move the I/O outside "
                        f"the lock or serialize it on a dedicated "
                        f"'*_sink_lock'",
                        symbol=node.name,
                        detail=io_name,
                    )


def _attrs_text(attrs) -> str:
    return ", ".join(f"'self.{name}'" for name in sorted(attrs))


def _locks_text(locks: FrozenSet[str]) -> str:
    return ", ".join(f"'{name}'" for name in sorted(locks))
