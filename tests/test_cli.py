"""Tests for the repro-profile CLI."""

import io
import os
import json

import pytest

from repro.cli import main
from repro.core.profile_io import load_leap


class TestList:
    def test_lists_workloads(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "gzip" in output
        assert "micro.list" in output


class TestRun:
    def test_writes_both_profiles(self, tmp_path, capsys):
        code = main(
            ["run", "micro.array", "--scale", "0.2", "-o", str(tmp_path)]
        )
        assert code == 0
        whomp = tmp_path / "micro.array.whomp.json"
        leap = tmp_path / "micro.array.leap.json"
        assert whomp.exists() and leap.exists()
        json.loads(whomp.read_text())  # valid JSON
        with open(leap) as handle:
            profile = load_leap(handle)
        assert profile.access_count > 0

    def test_single_profiler(self, tmp_path):
        main(["run", "micro.array", "--scale", "0.2", "--profiler", "leap",
              "-o", str(tmp_path)])
        assert not (tmp_path / "micro.array.whomp.json").exists()
        assert (tmp_path / "micro.array.leap.json").exists()

    def test_unknown_workload(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["run", "ghost", "-o", str(tmp_path)])


class TestStats:
    def test_prints_statistics(self, capsys):
        assert main(["stats", "micro.array", "--scale", "0.2"]) == 0
        output = capsys.readouterr().out
        assert "accesses" in output
        assert "reuse" in output

    def test_no_reuse_flag(self, capsys):
        main(["stats", "micro.array", "--scale", "0.2", "--no-reuse"])
        output = capsys.readouterr().out
        assert "reuse" not in output


class TestLang:
    SOURCE = """
    global int[8] table;
    fn main(): int {
      for (var i: int = 0; i < 8; i = i + 1) { table[i] = i; }
      var total: int = 0;
      for (var i: int = 0; i < 8; i = i + 1) { total = total + table[i]; }
      return total;
    }
    """

    def test_profiles_source_file(self, tmp_path, capsys):
        source = tmp_path / "sum.mir"
        source.write_text(self.SOURCE)
        code = main(["lang", str(source), "-o", str(tmp_path)])
        assert code == 0
        output = capsys.readouterr().out
        assert "program returned 28" in output
        assert (tmp_path / "sum.whomp.json").exists()
        assert (tmp_path / "sum.leap.json").exists()

    def test_missing_file(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["lang", str(tmp_path / "nope.mir")])


class TestDump:
    def test_dump_leap(self, tmp_path, capsys):
        main(["run", "micro.array", "--scale", "0.2", "--profiler", "leap",
              "-o", str(tmp_path)])
        capsys.readouterr()
        assert main(["dump", str(tmp_path / "micro.array.leap.json")]) == 0
        output = capsys.readouterr().out
        assert "LEAP profile" in output
        assert "LMADs" in output

    def test_dump_whomp(self, tmp_path, capsys):
        main(["run", "micro.array", "--scale", "0.2", "--profiler", "whomp",
              "-o", str(tmp_path)])
        capsys.readouterr()
        assert main(["dump", str(tmp_path / "micro.array.whomp.json")]) == 0
        output = capsys.readouterr().out
        assert "WHOMP profile" in output
        assert "offset stream" in output

    def test_dump_missing_file(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["dump", str(tmp_path / "nope.json")])

    def test_dump_unrecognized_format(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"format": "mystery"}')
        with pytest.raises(SystemExit):
            main(["dump", str(bogus)])


EXAMPLES = os.path.join(
    os.path.dirname(__file__), os.pardir, "examples", "programs"
)

CLEAN_SOURCE = """
fn main(): int {
  var a: int* = new int[4];
  a[0] = 1;
  delete a;
  return 0;
}
"""

DEFECT_SOURCE = """
fn main(): int {
  var a: int* = new int[4];
  delete a;
  return a[0];
}
"""


class TestCheck:
    def test_clean_source_exits_zero(self, tmp_path, capsys):
        source = tmp_path / "clean.mir"
        source.write_text(CLEAN_SOURCE)
        assert main(["check", str(source)]) == 0
        output = capsys.readouterr().out
        assert "0 diagnostic(s)" in output

    def test_diagnostics_exit_one(self, tmp_path, capsys):
        source = tmp_path / "bad.mir"
        source.write_text(DEFECT_SOURCE)
        assert main(["check", str(source)]) == 1
        output = capsys.readouterr().out
        assert "MIR102" in output
        assert f"{source}:5:" in output

    def test_parse_error_exits_two(self, tmp_path, capsys):
        source = tmp_path / "broken.mir"
        source.write_text("fn main(): int { return 1 +; }")
        assert main(["check", str(source)]) == 2
        err = capsys.readouterr().err
        # one-line file:line:col: message
        assert err.strip().startswith(f"{source}:1:")
        assert "\n" not in err.strip()

    def test_lang_parse_error_exits_two(self, tmp_path, capsys):
        source = tmp_path / "broken.mir"
        source.write_text("fn main(): int { return 1 +; }")
        assert main(["lang", str(source), "-o", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert err.strip().startswith(f"{source}:1:")

    def test_json_output_is_stable(self, tmp_path, capsys):
        source = tmp_path / "bad.mir"
        source.write_text(DEFECT_SOURCE)
        main(["check", str(source), "--json"])
        first = capsys.readouterr().out
        main(["check", str(source), "--json"])
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert payload["total_diagnostics"] == 1
        [entry] = payload["files"]
        [diagnostic] = entry["diagnostics"]
        assert diagnostic["code"] == "MIR102"
        assert diagnostic["line"] == 5
        assert "classifications" in entry

    def test_multiple_files_any_defect_fails(self, tmp_path):
        clean = tmp_path / "clean.mir"
        clean.write_text(CLEAN_SOURCE)
        bad = tmp_path / "bad.mir"
        bad.write_text(DEFECT_SOURCE)
        assert main(["check", str(clean), str(bad)]) == 1
        assert main(["check", str(clean)]) == 0

    def test_missing_file_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["check", str(tmp_path / "nope.mir")])

    def test_no_static_flag(self, tmp_path, capsys):
        source = tmp_path / "clean.mir"
        source.write_text(CLEAN_SOURCE)
        assert main(["check", str(source), "--no-static", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["files"][0]["classifications"] == {}

    def test_bundled_examples_are_clean(self, capsys):
        sources = [
            os.path.join(EXAMPLES, name)
            for name in ("matrix.mir", "binary_tree.mir", "linked_list.mir")
        ]
        assert main(["check"] + sources) == 0

    def test_defect_fixtures_flag(self, capsys):
        for name in ("defects_heap.mir", "defects_flow.mir"):
            assert main(["check", os.path.join(EXAMPLES, name)]) == 1
