"""Figure 7 bench: the Connors window-based profiler's error distribution.

Regenerates the figure and asserts its shape: the profiler never
overestimates a pair's frequency, and it misses dependences (mass on
the negative side, including a -100% miss bucket) -- exactly the
paper's characterization.  Includes the window-size sweep used to pick
the default window.
"""

import pytest
from conftest import once

from repro.baselines.connors import ConnorsProfiler
from repro.experiments import fig7


def test_fig7_connors_error_distribution(benchmark, context):
    results = once(benchmark, fig7.run, context)
    print()
    print(fig7.render(results))

    average = results["average"]
    assert results["never_overestimates"]
    fractions = average.fractions()
    # shape: real miss mass at -100%, and a weaker center than LEAP's
    assert fractions[0] > 0.05
    assert sum(fractions[11:]) == 0.0


@pytest.mark.parametrize("window", [128, 512, 768, 2048])
def test_fig7_window_sweep(benchmark, context, window):
    """Ablation: bigger windows catch more dependences, monotonically."""
    from repro.analysis.metrics import ErrorDistribution, error_distribution

    def sweep():
        distributions = []
        for name in context.benchmarks:
            profile = ConnorsProfiler(window=window).profile(context.trace(name))
            distributions.append(
                error_distribution(profile, context.truth_dependence(name))
            )
        return ErrorDistribution.average(distributions)

    average = once(benchmark, sweep)
    print(f"\nwindow {window}: within 10% = {average.within(0.10):.1%}")
    assert 0.0 <= average.within(0.10) <= 1.0
