"""Durability-invariant checking (RL131-RL132).

Profiles, checkpoints, and manifests survive crashes only because
every write goes through the atomic-write discipline (temp file in the
same directory, fsync, ``os.replace``).  A bare ``open(path, "w")``
truncates the old contents *before* the new ones are durable: a crash
in the window loses both versions.  So outside the modules that *are*
the primitive (``# repro: durable-primitive`` -- the fsutil
implementation and the blob store's mkstemp ingest), write-mode opens
and bare renames are errors; callers use
``repro.core.fsutil.atomic_write_text`` / ``atomic_write_bytes``.

Two constructions stay exempt because they are atomic by themselves:
``os.open(..., O_CREAT | O_EXCL | ...)`` (create-exclusive either
fully creates or fails -- the fault-ledger idiom) and writes aimed at
``os.devnull``.
"""

from __future__ import annotations

import ast
from typing import Optional, Set

from repro.selfcheck.findings import FindingSink
from repro.selfcheck.loader import SourceModule, dotted_name

_WRITE_MODE_CHARS = set("wax+")


def _mode_literal(node: ast.Call, position: int) -> Optional[str]:
    """The mode string of an ``open``-style call, when statically known."""
    if len(node.args) > position:
        arg = node.args[position]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
        return None
    for keyword in node.keywords:
        if keyword.arg == "mode":
            value = keyword.value
            if isinstance(value, ast.Constant) and isinstance(
                value.value, str
            ):
                return value.value
            return None
    return "r"


def _is_write_mode(mode: Optional[str]) -> bool:
    if mode is None:
        # a computed mode is treated as a write: the caller can say
        # `# repro: allow(RL131)` if it provably is not
        return True
    return bool(_WRITE_MODE_CHARS & set(mode))


def _is_devnull(node: ast.AST) -> bool:
    return dotted_name(node) == "os.devnull"


def _os_open_flags(node: ast.Call) -> Set[str]:
    """Final segments of the flag names in ``os.open(path, A | B)``."""
    if len(node.args) < 2:
        return set()
    flags: Set[str] = set()
    stack = [node.args[1]]
    while stack:
        item = stack.pop()
        if isinstance(item, ast.BinOp) and isinstance(item.op, ast.BitOr):
            stack.append(item.left)
            stack.append(item.right)
        else:
            name = dotted_name(item)
            if name is not None:
                flags.add(name.rsplit(".", 1)[-1])
    return flags


def check_module_durability(
    module: SourceModule, sink: FindingSink
) -> None:
    if "durable-primitive" in module.markers:
        return  # this module IS the atomic-write implementation
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        # method-style writes: Path.write_text / write_bytes
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "write_text",
            "write_bytes",
        ):
            _report_131(sink, node, f".{node.func.attr}()")
            continue
        name = dotted_name(node.func)
        if name is None:
            continue
        if name in ("open", "io.open"):
            if node.args and _is_devnull(node.args[0]):
                continue
            if _is_write_mode(_mode_literal(node, 1)):
                _report_131(sink, node, f"{name}(..., mode=w/a/x)")
        elif name == "os.fdopen":
            if _is_write_mode(_mode_literal(node, 1)):
                _report_131(sink, node, "os.fdopen(..., w)")
        elif name == "os.open":
            if node.args and _is_devnull(node.args[0]):
                continue
            flags = _os_open_flags(node)
            writable = bool(flags & {"O_WRONLY", "O_RDWR", "O_APPEND"})
            if writable and "O_EXCL" not in flags:
                _report_131(sink, node, "os.open(..., O_WRONLY/O_RDWR)")
        elif name in ("os.replace", "os.rename"):
            sink.report(
                "RL132",
                node.lineno,
                node.col_offset,
                f"bare {name}() outside the atomic-write primitive: "
                f"renames belong inside "
                f"repro.core.fsutil.atomic_write_text/_bytes",
                detail=name,
            )


def _report_131(sink: FindingSink, node: ast.Call, what: str) -> None:
    sink.report(
        "RL131",
        node.lineno,
        node.col_offset,
        f"non-atomic write ({what}): a crash mid-write loses both the "
        f"old and the new contents; use "
        f"repro.core.fsutil.atomic_write_text/_bytes",
        detail=what,
    )
