"""Load generation against a PROFSTORE daemon or cluster router.

Drives a deterministic mixed workload -- JSON ingest, BINCAP binary
ingest, chunked stream ingest, run/entry queries, document gets,
structural diffs -- from ``concurrency`` threads (each with its own
keep-alive connection), recording per-kind latency into
:class:`~repro.obs.quantiles.QuantileDigest` and counting failures by
class: transport errors, 5xx (server faults -- the cluster fault drill
asserts this stays **zero** while a shard dies), and 4xx.

``jobs > 1`` forks whole generator processes through
:class:`~repro.parallel.ParallelExecutor` so the client side scales
past one GIL when benchmarking; per-process reports merge losslessly
(counts sum, digests merge).

The op plan is seeded: the same (seed, requests, mix) drives the same
byte-identical sequence of operations at any concurrency.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import threading
import time
from typing import Dict, List, Optional, Tuple
from urllib.parse import urlencode, urlsplit

from repro.core.binformat import StreamWriter
from repro.core.events import AccessKind
from repro.core.profile_io import dumps_bytes
from repro.obs.quantiles import QuantileDigest
from repro.profilers.leap import LeapProfiler
from repro.runtime.process import Process
from repro.store.blobs import sha256_hex

#: default op mix (weights, normalized); ingest-heavy because ingest is
#: the cluster's replicated (most expensive) path
DEFAULT_MIX: Dict[str, float] = {
    "ingest-json": 0.30,
    "ingest-binary": 0.20,
    "ingest-stream": 0.10,
    "query-runs": 0.15,
    "query-entries": 0.10,
    "get": 0.10,
    "diff": 0.05,
}

OP_KINDS = tuple(DEFAULT_MIX)


def _connect(netloc: str, timeout: float) -> http.client.HTTPConnection:
    """A keep-alive connection with Nagle off.

    POST bodies go out in a second ``send()``; with Nagle on, that
    segment waits on the server's delayed ACK -- a fixed ~40ms stall
    per request that would swamp every latency number here.
    """
    connection = http.client.HTTPConnection(netloc, timeout=timeout)
    connection.connect()
    connection.sock.setsockopt(
        socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
    )
    return connection


def synthetic_documents(
    count: int = 6,
    seed: int = 0,
    accesses: int = 96,
    instructions: int = 1,
    blocks: int = 1,
) -> List[Tuple[str, str, bytes]]:
    """``count`` distinct (workload, fmt, serialized bytes) documents.

    LEAP profiles of synthetic access traces, alternating JSON and
    BINCAP binary serialization; distinct strides make every document's
    digest distinct.  ``instructions`` x ``blocks`` scales the profile's
    *structure* (one entry per instruction-block pair), which is what
    grows the serialized document and its decode cost -- raising
    ``accesses`` alone just grows per-LMAD counts.  The defaults yield
    ~1 KiB documents; the throughput bench uses heavyweight ones.
    """
    out: List[Tuple[str, str, bytes]] = []
    for index in range(count):
        process = Process()
        loads = [
            process.instruction(f"ld{i}", AccessKind.LOAD)
            for i in range(max(1, instructions))
        ]
        sites = [
            process.malloc(f"loadgen{b}", 4096, type_name="long[]")
            for b in range(max(1, blocks))
        ]
        for i, load in enumerate(loads):
            for b, block in enumerate(sites):
                stride = 1 + (seed + index + i + b) % 7
                for step in range(accesses):
                    process.load(load, block + (step * stride % 512) * 8)
        for block in sites:
            process.free(block)
        process.finish()
        profile = LeapProfiler().profile(process.trace)
        fmt = "json" if index % 2 == 0 else "binary"
        data = dumps_bytes(profile, fmt=fmt)
        out.append((f"loadgen.w{index}", fmt, data))
    return out


def build_plan(
    requests: int, seed: int, mix: Optional[Dict[str, float]] = None
) -> List[str]:
    """The deterministic op sequence for one generator."""
    weights = dict(DEFAULT_MIX)
    if mix:
        unknown = set(mix) - set(DEFAULT_MIX)
        if unknown:
            raise ValueError(f"unknown op kinds: {sorted(unknown)}")
        weights.update(mix)
    kinds = [kind for kind in OP_KINDS if weights.get(kind, 0) > 0]
    rng = random.Random(seed)
    return rng.choices(
        kinds, weights=[weights[kind] for kind in kinds], k=requests
    )


class LoadReport:
    """Counts + latency digests for one load run (mergeable)."""

    def __init__(self) -> None:
        self.requests = 0
        self.completed = 0
        self.failures = 0  # transport-level (connect/read errors)
        self.server_errors = 0  # HTTP 5xx
        self.client_errors = 0  # HTTP 4xx
        self.seconds = 0.0
        self.by_kind: Dict[str, Dict[str, int]] = {}
        self.digests: Dict[str, QuantileDigest] = {}

    def record(self, kind: str, seconds: float, status: Optional[int]) -> None:
        self.requests += 1
        row = self.by_kind.setdefault(
            kind, {"count": 0, "errors": 0}
        )
        row["count"] += 1
        if status is None:
            self.failures += 1
            row["errors"] += 1
        elif status >= 500:
            self.server_errors += 1
            row["errors"] += 1
        elif status >= 400:
            self.client_errors += 1
            row["errors"] += 1
        else:
            self.completed += 1
        for key in (kind, "*"):
            digest = self.digests.get(key)
            if digest is None:
                digest = self.digests[key] = QuantileDigest()
            digest.observe(seconds)

    @property
    def throughput_rps(self) -> float:
        return self.requests / self.seconds if self.seconds > 0 else 0.0

    def merge(self, other: "LoadReport") -> None:
        self.requests += other.requests
        self.completed += other.completed
        self.failures += other.failures
        self.server_errors += other.server_errors
        self.client_errors += other.client_errors
        self.seconds = max(self.seconds, other.seconds)
        for kind, row in other.by_kind.items():
            mine = self.by_kind.setdefault(kind, {"count": 0, "errors": 0})
            mine["count"] += row["count"]
            mine["errors"] += row["errors"]
        for key, digest in other.digests.items():
            mine_digest = self.digests.get(key)
            if mine_digest is None:
                self.digests[key] = QuantileDigest.from_plain(
                    digest.to_plain()
                )
            else:
                mine_digest.merge(digest)

    def to_json(self) -> Dict[str, object]:
        return {
            "requests": self.requests,
            "completed": self.completed,
            "failures": self.failures,
            "server_errors": self.server_errors,
            "client_errors": self.client_errors,
            "seconds": self.seconds,
            "throughput_rps": self.throughput_rps,
            "by_kind": self.by_kind,
            "latency": {
                key: digest.summary()
                for key, digest in self.digests.items()
                if digest.count
            },
        }

    def to_plain(self) -> Dict[str, object]:
        """Wire form for cross-process merge (jobs > 1)."""
        out = self.to_json()
        out["digest_plains"] = {
            key: digest.to_plain() for key, digest in self.digests.items()
        }
        return out

    @classmethod
    def from_plain(cls, plain: Dict[str, object]) -> "LoadReport":
        report = cls()
        report.requests = int(plain["requests"])  # type: ignore[arg-type]
        report.completed = int(plain["completed"])  # type: ignore[arg-type]
        report.failures = int(plain["failures"])  # type: ignore[arg-type]
        report.server_errors = int(plain["server_errors"])  # type: ignore
        report.client_errors = int(plain["client_errors"])  # type: ignore
        report.seconds = float(plain["seconds"])  # type: ignore[arg-type]
        report.by_kind = {
            kind: dict(row)
            for kind, row in plain.get("by_kind", {}).items()  # type: ignore
        }
        report.digests = {
            key: QuantileDigest.from_plain(value)
            for key, value in plain.get("digest_plains", {}).items()  # type: ignore
        }
        return report


class _Generator:
    """One load run: shared plan, N worker threads, one report."""

    def __init__(
        self,
        url: str,
        plan: List[str],
        documents: List[Tuple[str, str, bytes]],
        concurrency: int,
        timeout: float,
        unique_ingest: bool = False,
    ) -> None:
        self.netloc = urlsplit(url).netloc
        self.plan = plan
        self.documents = documents
        self.concurrency = max(1, concurrency)
        self.timeout = timeout
        self.unique_ingest = unique_ingest
        self._next = 0
        self._plan_lock = threading.Lock()
        self._digest_lock = threading.Lock()
        self._known: List[Tuple[str, str]] = []  # (digest, workload)
        self._reports: List[LoadReport] = []
        self._report_lock = threading.Lock()

    # -- plumbing ------------------------------------------------------

    def _take(self) -> Optional[Tuple[int, str]]:
        with self._plan_lock:
            if self._next >= len(self.plan):
                return None
            index = self._next
            self._next += 1
        return index, self.plan[index]

    def _note_digest(self, digest: str, workload: str) -> None:
        with self._digest_lock:
            self._known.append((digest, workload))

    def _pick_digests(self, rng: random.Random, count: int) -> List[str]:
        with self._digest_lock:
            if not self._known:
                return []
            return [rng.choice(self._known)[0] for __ in range(count)]

    def _request(
        self,
        connection: http.client.HTTPConnection,
        method: str,
        path: str,
        body: Optional[object] = None,
        headers: Optional[Dict[str, str]] = None,
        chunked: bool = False,
    ) -> Tuple[int, bytes]:
        connection.request(
            method, path, body=body, headers=headers or {},
            encode_chunked=chunked,
        )
        response = connection.getresponse()
        return response.status, response.read()

    # -- ops -----------------------------------------------------------

    def _run_op(
        self,
        connection: http.client.HTTPConnection,
        kind: str,
        index: int,
        rng: random.Random,
    ) -> Optional[int]:
        if kind in ("ingest-json", "ingest-binary"):
            wanted = "json" if kind == "ingest-json" else "binary"
            pool = [d for d in self.documents if d[1] == wanted]
            workload, __, data = pool[index % len(pool)]
            if self.unique_ingest and wanted == "json":
                # per-op trailing padding makes every digest distinct,
                # so each op exercises the full validate + compress +
                # write path instead of the content-addressed dedup
                # short-circuit (binary documents cannot be padded:
                # BINCAP rejects trailing bytes as a torn frame)
                data = data + b" " * (1 + index)
            status, body = self._request(
                connection, "POST",
                f"/ingest?{urlencode({'workload': workload})}", body=data,
            )
            if status in (200, 201):
                try:
                    digest = json.loads(body.decode("utf-8")).get("digest")
                except ValueError:
                    digest = None
                if isinstance(digest, str):
                    self._note_digest(digest, workload)
            return status
        if kind == "ingest-stream":
            workload, __, data = self.documents[index % len(self.documents)]
            pending: List[bytes] = []
            writer = StreamWriter(pending.append)
            writer.begin()
            writer.send_document(workload, data)
            writer.close()

            def chunks():
                yield b"".join(pending)

            status, __body = self._request(
                connection, "POST", "/ingest/stream", body=chunks(),
                headers={"Transfer-Encoding": "chunked"}, chunked=True,
            )
            if status in (200, 201):
                self._note_digest(sha256_hex(data), workload)
            return status
        if kind == "query-runs":
            workload = self.documents[index % len(self.documents)][0]
            status, __body = self._request(
                connection, "GET",
                f"/query/runs?{urlencode({'workload': workload})}",
            )
            return status
        if kind == "query-entries":
            picked = self._pick_digests(rng, 1)
            if not picked:
                status, __body = self._request(
                    connection, "GET", "/query/runs"
                )
                return status
            # run= restricts the scan to one blob: the op stays cheap
            # at any store size, which keeps the mix stationary
            status, __body = self._request(
                connection, "GET",
                f"/query/entries?{urlencode({'run': picked[0]})}",
            )
            return status
        if kind == "get":
            picked = self._pick_digests(rng, 1)
            if not picked:
                status, __body = self._request(connection, "GET", "/healthz")
                return status
            status, __body = self._request(
                connection, "GET", f"/get?{urlencode({'run': picked[0]})}"
            )
            return status
        if kind == "diff":
            picked = self._pick_digests(rng, 2)
            if len(picked) < 2:
                status, __body = self._request(connection, "GET", "/healthz")
                return status
            status, __body = self._request(
                connection, "GET",
                f"/diff?{urlencode({'a': picked[0], 'b': picked[1]})}",
            )
            return status
        raise ValueError(f"unknown op kind {kind!r}")

    # -- workers -------------------------------------------------------

    def _worker(self, worker_index: int) -> None:
        rng = random.Random(worker_index * 7919 + 17)
        report = LoadReport()
        connection = _connect(self.netloc, self.timeout)
        try:
            while True:
                taken = self._take()
                if taken is None:
                    break
                index, kind = taken
                start = time.perf_counter()
                status: Optional[int] = None
                try:
                    status = self._run_op(connection, kind, index, rng)
                except (http.client.HTTPException, OSError, ValueError):
                    # one reconnect per failed op: a shard dying
                    # mid-exchange costs that op a retry, not the run
                    connection.close()
                    try:
                        connection = _connect(self.netloc, self.timeout)
                        status = self._run_op(connection, kind, index, rng)
                    except (http.client.HTTPException, OSError, ValueError):
                        connection.close()
                        connection = http.client.HTTPConnection(
                            self.netloc, timeout=self.timeout
                        )
                        status = None
                report.record(kind, time.perf_counter() - start, status)
        finally:
            connection.close()
            with self._report_lock:
                self._reports.append(report)

    def run(self) -> LoadReport:
        started = time.perf_counter()
        threads = [
            threading.Thread(target=self._worker, args=(index,), daemon=True)
            for index in range(self.concurrency)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        merged = LoadReport()
        with self._report_lock:
            for report in self._reports:
                merged.merge(report)
        merged.seconds = time.perf_counter() - started
        return merged


def run_load(
    url: str,
    requests: int = 200,
    concurrency: int = 8,
    seed: int = 0,
    mix: Optional[Dict[str, float]] = None,
    documents: Optional[List[Tuple[str, str, bytes]]] = None,
    warmup_ingests: int = 4,
    timeout: float = 30.0,
    unique_ingest: bool = False,
) -> LoadReport:
    """One in-process load run against ``url``; returns the report.

    ``warmup_ingests`` seeds the store with a few documents first so
    get/diff/entry ops have digests to chase from the first request
    (warmup is outside the timed window and the report).
    ``unique_ingest`` pads every JSON ingest body distinctly so each op
    is a genuinely new blob (the throughput bench's honest-ingest mode).
    """
    docs = documents if documents is not None else synthetic_documents(
        seed=seed
    )
    plan = build_plan(requests, seed, mix)
    generator = _Generator(
        url, plan, docs, concurrency, timeout, unique_ingest=unique_ingest
    )
    if warmup_ingests > 0:
        connection = _connect(generator.netloc, timeout)
        try:
            for index in range(min(warmup_ingests, len(docs))):
                workload, __, data = docs[index]
                status, body = generator._request(
                    connection, "POST",
                    f"/ingest?{urlencode({'workload': workload})}",
                    body=data,
                )
                if status in (200, 201):
                    generator._note_digest(sha256_hex(data), workload)
        finally:
            connection.close()
    return generator.run()


def _load_worker(task: Tuple[str, int, int, int, Optional[Dict[str, float]]]):
    """Module-level worker for ParallelExecutor (fork-safe dispatch):
    one whole load generator per process."""
    url, requests, concurrency, seed, mix = task
    report = run_load(
        url, requests=requests, concurrency=concurrency, seed=seed, mix=mix
    )
    return report.to_plain()


def run_load_parallel(
    url: str,
    requests: int = 200,
    concurrency: int = 8,
    jobs: int = 1,
    seed: int = 0,
    mix: Optional[Dict[str, float]] = None,
) -> LoadReport:
    """Scale the client side across ``jobs`` processes.

    Each job runs ``requests // jobs`` ops with its own derived seed;
    reports merge counts and QuantileDigests, and ``seconds`` is the
    slowest job's wall clock (they run concurrently).
    """
    if jobs <= 1:
        return run_load(
            url, requests=requests, concurrency=concurrency, seed=seed,
            mix=mix,
        )
    from repro.parallel import ParallelExecutor

    share = max(1, requests // jobs)
    tasks = [
        (url, share, concurrency, seed + index * 1009, mix)
        for index in range(jobs)
    ]
    executor = ParallelExecutor(jobs=jobs)
    outcomes = executor.map_outcomes(_load_worker, tasks, label="loadgen")
    merged = LoadReport()
    for outcome in outcomes:
        if outcome.error is not None or outcome.value is None:
            continue
        merged.merge(LoadReport.from_plain(outcome.value))
    return merged
