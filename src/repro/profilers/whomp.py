"""WHOMP -- the WHOle-stream Memory Profiler (Section 3).

WHOMP is the lossless object-relative profiler: it translates the full
access stream into object-relative form, decomposes it horizontally
along the four tuple dimensions, and compresses each dimension stream
with its own Sequitur instance.  The result is the paper's OMSG --
*object-relative multi-dimensional Sequitur grammar* -- plus the OMC's
auxiliary object table, which together losslessly encode the raw trace.

Losslessness is literal here: :meth:`WhompProfile.reconstruct_accesses`
re-derives the exact raw ``(instruction-id, address)`` stream, and the
test suite round-trips it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.compression.sequitur import SequiturGrammar
from repro.core.cdc import translate_trace
from repro.core.events import Trace
from repro.core.omc import ObjectManager
from repro.core.scc import HorizontalSequiturSCC
from repro.core.tuples import DIMENSIONS, WILD_GROUP
from repro.telemetry.spans import Telemetry, coalesce


@dataclass
class WhompProfile:
    """WHOMP's output: the OMSG and the OMC's auxiliary tables."""

    #: one Sequitur grammar per tuple dimension (the OMSG)
    grammars: Dict[str, SequiturGrammar]
    #: (group, serial) -> object start address; run/alloc-dependent side
    #: information kept apart from the invariant object-relative tuples
    base_addresses: Dict[Tuple[int, int], int]
    #: (group, serial, alloc_time, free_time, size) rows
    lifetimes: List[Tuple[int, int, int, Optional[int], int]]
    #: group id -> human-readable label (site / type)
    group_labels: Dict[int, str]
    #: number of accesses profiled (degraded mode: accesses *kept*)
    access_count: int
    #: kept / (kept + quarantined); 1.0 outside degraded mode
    capture_completeness: float = 1.0
    #: tuples diverted to the quarantine sidecar instead of the OMSG
    quarantined: int = 0

    def size(self) -> int:
        """OMSG size: total grammar symbols across dimensions."""
        return sum(grammar.size() for grammar in self.grammars.values())

    def size_bytes(self, bytes_per_symbol: int = 4) -> int:
        return sum(
            g.size_bytes(bytes_per_symbol) for g in self.grammars.values()
        )

    def size_bytes_varint(self) -> int:
        """Serialized profile size with varint symbol coding -- the
        byte-level size Figure 5's comparison uses."""
        return sum(g.size_bytes_varint() for g in self.grammars.values())

    def dimension_sizes(self) -> Dict[str, int]:
        """Per-dimension grammar sizes -- the paper's point that each
        dimension's grammar serves a different optimization."""
        return {name: grammar.size() for name, grammar in self.grammars.items()}

    def expand_tuples(self) -> List[Tuple[int, int, int, int]]:
        """Decompress back to the (instruction, group, object, offset)
        tuple stream, in time order."""
        streams = {name: self.grammars[name].expand() for name in DIMENSIONS}
        length = self.access_count
        for name, stream in streams.items():
            if len(stream) != length:
                raise ValueError(
                    f"corrupt OMSG: {name} stream has {len(stream)} entries, "
                    f"expected {length}"
                )
        return list(
            zip(
                streams["instruction"],
                streams["group"],
                streams["object"],
                streams["offset"],
            )
        )

    def reconstruct_accesses(self) -> List[Tuple[int, int]]:
        """Losslessly rebuild the raw (instruction-id, address) stream
        from the OMSG plus the auxiliary base-address table."""
        out: List[Tuple[int, int]] = []
        for instruction, group, serial, offset in self.expand_tuples():
            if group == WILD_GROUP:
                out.append((instruction, offset))
            else:
                out.append((instruction, self.base_addresses[(group, serial)] + offset))
        return out


class WhompProfiler:
    """Run WHOMP over a recorded trace.

    >>> profiler = WhompProfiler()
    >>> profile = profiler.profile(trace)        # doctest: +SKIP
    """

    def __init__(
        self,
        refine_by_type: bool = False,
        compressor=None,
        telemetry: Optional[Telemetry] = None,
        jobs: int = 1,
        quarantine=None,
    ) -> None:
        self.refine_by_type = refine_by_type
        self.compressor = compressor if compressor is not None else SequiturGrammar
        self.telemetry = coalesce(telemetry)
        self.jobs = jobs
        #: a :class:`~repro.resilience.degraded.Quarantine` enables
        #: degraded mode: untrustworthy tuples are diverted to it and
        #: the profile reports :attr:`WhompProfile.capture_completeness`
        self.quarantine = quarantine

    def _translated(self, trace: Trace, omc: ObjectManager):
        """The translated stream, filtered through the quarantine when
        degraded mode is on."""
        stream = translate_trace(trace, omc)
        if self.quarantine is None:
            return stream
        from repro.resilience.degraded import quarantine_stream

        return quarantine_stream(stream, self.quarantine)

    def _quarantined_since(self, mark: int) -> int:
        if self.quarantine is None:
            return 0
        return self.quarantine.total - mark

    def profile(self, trace: Trace) -> WhompProfile:
        omc = ObjectManager(refine_by_type=self.refine_by_type)
        scc = HorizontalSequiturSCC(compressor=self.compressor)
        telemetry = self.telemetry
        mark = self.quarantine.total if self.quarantine is not None else 0
        if self.jobs != 1:
            from repro.parallel import resolve_jobs

            if resolve_jobs(self.jobs) > 1:
                return self._profile_parallel(trace, omc, scc, telemetry, mark)
        if not telemetry.enabled:
            count = 0
            for access in self._translated(trace, omc):
                scc.consume(access)
                count += 1
            return self._package(scc, omc, count, self._quarantined_since(mark))
        return self._profile_instrumented(trace, omc, scc, telemetry, mark)

    def _profile_parallel(
        self,
        trace: Trace,
        omc: ObjectManager,
        scc: HorizontalSequiturSCC,
        telemetry: Telemetry,
        mark: int = 0,
    ) -> WhompProfile:
        """The fan-out pipeline: translation and horizontal
        decomposition stay in-process (the CDC/OMC front-end is shared
        state), then the four independent dimension streams compress in
        up to four pool workers and the grammars merge back.  Output is
        identical to the serial paths'; the compressor factory must be
        a picklable (module-level) class.
        """
        from repro.parallel import ParallelExecutor
        from repro.parallel.workers import compress_dimension

        with telemetry.span("whomp") as whole:
            with telemetry.span("translation") as span:
                accesses = list(self._translated(trace, omc))
                span.add_items(len(accesses), "accesses")
            with telemetry.span("decomposition") as span:
                streams = scc.decompose(accesses)
                span.add_items(len(accesses), "accesses")
            executor = ParallelExecutor(jobs=self.jobs, telemetry=telemetry)
            tasks = [
                (name, streams[name], self.compressor) for name in DIMENSIONS
            ]
            with telemetry.span("compression") as span:
                results = executor.map(
                    compress_dimension, tasks, label="whomp-dimensions"
                )
                span.add_items(sum(len(s) for s in streams.values()), "symbols")
            scc.adopt_grammars(dict(results))
            whole.add_items(len(accesses), "accesses")
        if telemetry.enabled:
            telemetry.counter(
                "cdc.translated_total", "accesses made object-relative"
            ).inc(len(accesses))
            telemetry.counter(
                "cdc.wild_total", "accesses resolving to no live object"
            ).inc(sum(1 for a in accesses if a.group == WILD_GROUP))
        profile = self._package(
            scc, omc, len(accesses), self._quarantined_since(mark)
        )
        if telemetry.enabled:
            self._record_metrics(profile, telemetry)
        return profile

    def _profile_instrumented(
        self,
        trace: Trace,
        omc: ObjectManager,
        scc: HorizontalSequiturSCC,
        telemetry: Telemetry,
        mark: int = 0,
    ) -> WhompProfile:
        """The telemetry-timed pipeline: each paper stage is a span.

        Staging materializes the translated stream so translation,
        horizontal decomposition, and Sequitur compression can be timed
        separately; the produced profile is identical to the streaming
        path's.
        """
        with telemetry.span("whomp") as whole:
            with telemetry.span("translation") as span:
                accesses = list(self._translated(trace, omc))
                span.add_items(len(accesses), "accesses")
            telemetry.counter(
                "cdc.translated_total", "accesses made object-relative"
            ).inc(len(accesses))
            telemetry.counter(
                "cdc.wild_total", "accesses resolving to no live object"
            ).inc(sum(1 for a in accesses if a.group == WILD_GROUP))
            with telemetry.span("decomposition") as span:
                streams = scc.decompose(accesses)
                span.add_items(len(accesses), "accesses")
            with telemetry.span("compression") as span:
                scc.compress_streams(streams)
                span.add_items(
                    sum(len(s) for s in streams.values()), "symbols"
                )
            whole.add_items(len(accesses), "accesses")
        profile = self._package(
            scc, omc, len(accesses), self._quarantined_since(mark)
        )
        self._record_metrics(profile, telemetry)
        return profile

    @staticmethod
    def _record_metrics(profile: WhompProfile, telemetry: Telemetry) -> None:
        """Registry gauges shared by the instrumented serial and the
        parallel paths."""
        rules = 0
        for grammar in profile.grammars.values():
            rule_count = getattr(grammar, "rule_count", None)
            if callable(rule_count):
                rules += rule_count()
        telemetry.gauge(
            "whomp.grammar_rules", "Sequitur rules across the OMSG"
        ).set(rules)
        telemetry.gauge(
            "whomp.profile_symbols", "total OMSG grammar symbols"
        ).set(profile.size())
        telemetry.gauge(
            "whomp.profile_bytes", "varint-coded OMSG size"
        ).set(profile.size_bytes_varint())
        telemetry.gauge(
            "whomp.groups", "object groups in the OMC tables"
        ).set(len(profile.group_labels))

    def attach(self, bus) -> "OnlineWhompSession":
        """Attach an online WHOMP pipeline to a live probe bus (the
        paper's instrumented-program configuration: probes feed the
        CDC/OMC while the program runs)."""
        return OnlineWhompSession(self, bus)

    def _package(
        self,
        scc: HorizontalSequiturSCC,
        omc: ObjectManager,
        count: int,
        quarantined: int = 0,
    ) -> WhompProfile:
        total = count + quarantined
        if quarantined and self.telemetry.enabled:
            self.telemetry.counter(
                "resilience.quarantined",
                "tuples diverted to the quarantine sidecar",
            ).inc(quarantined)
        return WhompProfile(
            grammars=scc.grammars,
            base_addresses=omc.base_address_table(),
            lifetimes=omc.lifetime_table(),
            group_labels={g.group_id: g.label for g in omc.groups},
            access_count=count,
            capture_completeness=(count / total) if total else 1.0,
            quarantined=quarantined,
        )


class OnlineWhompSession:
    """A live WHOMP pipeline: OnlineCDC -> HorizontalSequiturSCC."""

    def __init__(self, profiler: WhompProfiler, bus) -> None:
        from repro.core.cdc import OnlineCDC

        self._profiler = profiler
        self._bus = bus
        self._scc = HorizontalSequiturSCC(compressor=profiler.compressor)
        consumer = self._scc.consume
        self._mark = 0
        if profiler.quarantine is not None:
            from repro.resilience.degraded import quarantine_consumer

            self._mark = profiler.quarantine.total
            consumer = quarantine_consumer(consumer, profiler.quarantine)
        self._cdc = OnlineCDC(
            consumer,
            ObjectManager(refine_by_type=profiler.refine_by_type),
            telemetry=profiler.telemetry,
        )
        bus.attach(self._cdc)

    def finish(self) -> WhompProfile:
        self._bus.detach(self._cdc)
        quarantined = self._profiler._quarantined_since(self._mark)
        return self._profiler._package(
            self._scc, self._cdc.omc, self._cdc.clock - quarantined, quarantined
        )
