"""Ablation bench: phase-cognizant LEAP (the future-work extension).

A phase-split LEAP profile gives each detected phase its own descriptor
budget, so instructions whose behaviour differs across phases keep
their regular phases captured.  The ablation checks the capture gain on
a phase-heavy synthetic program and the (modest) size cost.
"""

from conftest import once

from repro.analysis.phases import PhasedLeapProfiler
from repro.core.events import AccessKind
from repro.profilers.leap import LeapProfiler
from repro.runtime.process import Process


def phase_heavy_trace(rounds=4, words=4096):
    # words chosen so phases align with the detector's 2048-access
    # intervals; misaligned boundaries create mixed-signature intervals
    # that fragment the phase clustering (a known limitation of
    # interval-based phase detection).
    process = Process()
    buffer = process.malloc("buf", words * 8)
    ld = process.instruction("scan", AccessKind.LOAD)
    st = process.instruction("update", AccessKind.STORE)
    state = 1
    for __ in range(rounds):
        for word in range(words):
            process.load(ld, buffer + word * 8)
            process.store(st, buffer + word * 8)
        for __ in range(words):
            state = (state * 1103515245 + 12345) % (1 << 31)
            process.load(ld, buffer + (state % words) * 8)
    process.finish()
    return process.trace


def test_phase_cognizant_capture_gain(benchmark):
    trace = phase_heavy_trace()

    def measure():
        flat = LeapProfiler().profile(trace)
        phased = PhasedLeapProfiler(interval=2048).profile(trace)
        return flat, phased

    flat, phased = once(benchmark, measure)
    print()
    print(f"flat:   captured {flat.accesses_captured():.1%}, "
          f"{flat.size_bytes()} bytes")
    print(f"phased: captured {phased.accesses_captured():.1%}, "
          f"{phased.size_bytes()} bytes, {phased.phase_count()} phases")

    assert phased.phase_count() >= 2
    assert phased.accesses_captured() > flat.accesses_captured() + 0.10
    # the size cost stays within one extra budget's worth per phase
    assert phased.size_bytes() < flat.size_bytes() * (phased.phase_count() + 1)


def test_phase_split_neutral_on_single_phase_workload(context):
    """No phase change -> no gain, and no pathological size blowup."""
    trace = context.trace("crafty")
    flat = LeapProfiler().profile(trace)
    phased = PhasedLeapProfiler(interval=4096).profile(trace)
    assert phased.accesses_captured() >= flat.accesses_captured() - 0.05
