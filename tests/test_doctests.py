"""Run the doctests embedded in module and class docstrings.

Keeps the documentation honest: every ``>>>`` example in the library
must execute as written.
"""

import doctest

import pytest

import repro.analysis.omega
import repro.compression.lmad
import repro.compression.rle
import repro.compression.sequitur
import repro.lang.interp
import repro.runtime.cache
import repro.runtime.linker
import repro.runtime.memory

MODULES = [
    repro.analysis.omega,
    repro.compression.lmad,
    repro.compression.rle,
    repro.compression.sequitur,
    repro.lang.interp,
    repro.runtime.cache,
    repro.runtime.linker,
    repro.runtime.memory,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(
        module, verbose=False, optionflags=doctest.NORMALIZE_WHITESPACE
    )
    assert results.failed == 0, f"{results.failed} doctest failure(s)"
