"""Phase-cognizant LEAP profiling (the paper's future-work extension).

A two-phase program (strided fill phase, then pointer-chase phase) is
profiled flat and phase-split.  The flat profile burns its descriptor
budget when the pattern changes; the phased profiler detects the phase
boundary from interval signatures and gives each phase its own budget.
Run with::

    python examples/phase_profiling.py
"""

from repro import AccessKind, Process
from repro.analysis.phases import PhasedLeapProfiler
from repro.profilers.leap import LeapProfiler


def two_phase_program() -> Process:
    """One shared routine reads the buffer sequentially in phase A and
    in a pseudo-random order in phase B -- a single static load
    instruction whose behaviour is phase-dependent."""
    process = Process()
    words = 4096
    buffer = process.malloc("demo.buffer", words * 8, type_name="long[]")
    ld = process.instruction("scan.load", AccessKind.LOAD)
    st = process.instruction("update.store", AccessKind.STORE)
    state = 1
    for __ in range(4):
        # Phase A: sequential scan (strided, one LMAD's worth).
        for word in range(words):
            process.load(ld, buffer + word * 8)
            process.store(st, buffer + word * 8)
        # Phase B: random probing through the same instruction.
        for __ in range(words):
            state = (state * 1103515245 + 12345) % (1 << 31)
            process.load(ld, buffer + (state % words) * 8)
    process.finish()
    return process


def main() -> None:
    process = two_phase_program()
    trace = process.trace

    flat = LeapProfiler().profile(trace)
    phased = PhasedLeapProfiler(interval=2048).profile(trace)

    print(f"trace: {trace.access_count} accesses, alternating phases")
    print(f"\nflat LEAP:   accesses captured {flat.accesses_captured():.1%}, "
          f"{flat.size_bytes()} bytes")
    print(f"phased LEAP: accesses captured {phased.accesses_captured():.1%}, "
          f"{phased.size_bytes()} bytes, {phased.phase_count()} phases")
    print(f"phase assignment over time: {phased.assignments}")
    print(
        "\nEach phase gets its own descriptor budget, so the strided fill"
        "\nphase stays fully captured no matter how much chase traffic"
        "\nfollows it -- and the per-phase profiles tell the compiler how"
        "\nbehaviour differs across phases."
    )


if __name__ == "__main__":
    main()
