"""Shard process supervision: spawn, watch, restart with backoff.

Each shard is one ``repro-serve serve`` process over its own store
root (``<root>/shard0``, ``<root>/shard1``, ...), bound to an
ephemeral port; the child prints ``listening <host>:<port>`` on stdout
(the satellite contract of ``--port 0``) and the supervisor parses it.

A monitor thread restarts any shard that exits while still desired,
with per-shard exponential backoff (a crash-looping shard cannot spin
the CPU), emits a schema-checked ``shard_restart`` event, and invokes
``on_address_change`` so the router's health table learns the new
port -- the ring is keyed by shard *name*, so placement never moves on
restart.

Shard roots persist across restarts: a restarted shard comes back with
every blob it held, and anything it missed while down arrives later by
read-repair or ``/rebalance``.
"""

from __future__ import annotations

import os
import re
import select
import signal
import subprocess
import sys
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

import repro
from repro.obs.events import EventLog

#: first restart delay; doubles per consecutive restart up to the cap
DEFAULT_BACKOFF = 0.2
DEFAULT_MAX_BACKOFF = 2.0

#: seconds a freshly spawned shard gets to print its listening line
DEFAULT_BOOT_TIMEOUT = 30.0

_LISTENING = re.compile(r"^listening\s+(\S+):(\d+)\s*$")


def _drain_pipe(pipe) -> None:
    """Swallow a child's stdout so the pipe never fills and blocks it."""
    try:
        while pipe.read(4096):
            pass
    except (OSError, ValueError):
        pass


class ShardSupervisor:
    """Owns N shard processes and keeps them alive."""

    def __init__(
        self,
        root: str,
        shards: int = 3,
        host: str = "127.0.0.1",
        events: Optional[EventLog] = None,
        backoff: float = DEFAULT_BACKOFF,
        max_backoff: float = DEFAULT_MAX_BACKOFF,
        poll_interval: float = 0.1,
        boot_timeout: float = DEFAULT_BOOT_TIMEOUT,
        drain_deadline: float = 3.0,
        on_address_change: Optional[
            Callable[[str, str, int, int], None]
        ] = None,
    ) -> None:
        if shards < 1:
            raise ValueError("a cluster needs at least one shard")
        self.root = root
        self.host = host
        self.events = events if events is not None else EventLog()
        self.backoff = backoff
        self.max_backoff = max_backoff
        self.poll_interval = poll_interval
        self.boot_timeout = boot_timeout
        self.drain_deadline = drain_deadline
        self.on_address_change = on_address_change
        self._lock = threading.Lock()
        self._shards: Dict[str, Dict[str, object]] = {
            f"shard{index}": {
                "proc": None,
                "url": None,
                "pid": None,
                "restarts": 0,
                "desired": True,
                "backoff": backoff,
            }
            for index in range(shards)
        }
        self._stop = threading.Event()
        self._monitor: Optional[threading.Thread] = None

    # -- spawning ------------------------------------------------------

    def _command(self, name: str) -> List[str]:
        shard_root = os.path.join(self.root, name)
        return [
            sys.executable,
            "-m",
            "repro.store.serve_cli",
            "serve",
            "--root", shard_root,
            "--host", self.host,
            "--port", "0",
            "--trace-out", os.path.join(shard_root, "events.jsonl"),
            "--drain-deadline", str(self.drain_deadline),
        ]

    def _spawn(self, name: str) -> Tuple[subprocess.Popen, str, int]:
        """Start one shard and wait for its ``listening`` line."""
        os.makedirs(os.path.join(self.root, name), exist_ok=True)
        env = dict(os.environ)
        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src if not existing else f"{src}{os.pathsep}{existing}"
        proc = subprocess.Popen(
            self._command(name),
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=env,
            bufsize=0,
        )
        # select() + manual buffering, never readline(): a buffered
        # reader can slurp the announce line into its private buffer
        # while this loop keeps select()ing on the (now drained) fd
        deadline = time.monotonic() + self.boot_timeout
        pending = bytearray()
        try:
            host = None
            port = 0
            while host is None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise RuntimeError(
                        f"{name} did not announce a port within "
                        f"{self.boot_timeout}s"
                    )
                ready = select.select(
                    [proc.stdout], [], [], min(remaining, 0.25)
                )
                if not ready[0]:
                    if proc.poll() is not None:
                        raise RuntimeError(
                            f"{name} exited with {proc.returncode} before "
                            "announcing a port"
                        )
                    continue
                piece = proc.stdout.read(4096)
                if not piece:
                    raise RuntimeError(
                        f"{name} closed stdout before announcing a port"
                    )
                pending += piece
                while b"\n" in pending:
                    line, __, pending = pending.partition(b"\n")
                    pending = bytearray(pending)
                    match = _LISTENING.match(line.decode("utf-8", "replace"))
                    if match:
                        host, port = match.group(1), int(match.group(2))
                        break
        except Exception:
            proc.kill()
            proc.wait()
            raise
        # keep draining stdout forever so the child never blocks on it
        threading.Thread(
            target=_drain_pipe, args=(proc.stdout,), daemon=True
        ).start()
        return proc, host, port

    def start(self) -> "ShardSupervisor":
        """Spawn every shard, then start the monitor thread."""
        for name in self.names():
            self._start_shard(name)
        with self._lock:
            if self._monitor is None:
                self._monitor = threading.Thread(
                    target=self._monitor_loop, daemon=True
                )
        self._monitor.start()
        return self

    def _start_shard(self, name: str) -> None:
        proc, host, port = self._spawn(name)
        url = f"http://{host}:{port}"
        with self._lock:
            record = self._shards[name]
            record["proc"] = proc
            record["url"] = url
            record["pid"] = proc.pid
            record["desired"] = True
            restarts = int(record["restarts"])  # type: ignore[arg-type]
        if self.on_address_change is not None:
            self.on_address_change(name, url, proc.pid, restarts)

    # -- monitoring ----------------------------------------------------

    def _monitor_loop(self) -> None:
        while not self._stop.wait(self.poll_interval):
            dead: List[Tuple[str, Optional[int], float]] = []
            with self._lock:
                for name, record in self._shards.items():
                    proc = record["proc"]
                    if proc is None or not record["desired"]:
                        continue
                    code = proc.poll()  # type: ignore[union-attr]
                    if code is None:
                        continue
                    record["proc"] = None
                    record["restarts"] = int(record["restarts"]) + 1
                    wait = float(record["backoff"])  # type: ignore[arg-type]
                    record["backoff"] = min(wait * 2, self.max_backoff)
                    dead.append((name, code, wait))
            for name, code, wait in dead:
                # the sleep is deliberately outside the lock: a crash
                # loop must not block status queries or stop()
                time.sleep(wait)
                if self._stop.is_set():
                    return
                with self._lock:
                    if not self._shards[name]["desired"]:
                        continue
                    restarts = int(self._shards[name]["restarts"])
                try:
                    self._start_shard(name)
                except (OSError, RuntimeError) as exc:
                    self.events.emit(
                        "shard_restart",
                        shard=name,
                        restarts=restarts,
                        backoff_seconds=wait,
                        exit_code=f"respawn failed: {exc}",
                    )
                    continue
                self.events.emit(
                    "shard_restart",
                    shard=name,
                    restarts=restarts,
                    backoff_seconds=wait,
                    exit_code=code,
                )
                self.events.flush()

    # -- control -------------------------------------------------------

    def names(self) -> List[str]:
        with self._lock:
            return list(self._shards)

    def addresses(self) -> Dict[str, Optional[str]]:
        with self._lock:
            return {
                name: record["url"]  # type: ignore[misc]
                for name, record in self._shards.items()
            }

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        with self._lock:
            out = {}
            for name, record in self._shards.items():
                proc = record["proc"]
                out[name] = {
                    "url": record["url"],
                    "pid": record["pid"],
                    "restarts": record["restarts"],
                    "desired": record["desired"],
                    "running": proc is not None
                    and proc.poll() is None,  # type: ignore[union-attr]
                }
            return out

    def kill_shard(self, name: str) -> Optional[int]:
        """SIGKILL one shard *without* clearing its desired flag -- the
        fault-drill primitive; the monitor will restart it."""
        with self._lock:
            record = self._shards[name]
            proc = record["proc"]
            pid = record["pid"]
        if proc is None:
            return None
        try:
            proc.kill()  # type: ignore[union-attr]
        except OSError:
            return None
        return pid  # type: ignore[return-value]

    def stop_shard(self, name: str, graceful: bool = True) -> None:
        """Stop one shard for good (drain path): SIGTERM first, so the
        daemon drains in-flight requests and logs ``server_shutdown``,
        escalating to SIGKILL past the deadline."""
        with self._lock:
            record = self._shards.get(name)
            if record is None:
                raise KeyError(f"no such shard: {name}")
            record["desired"] = False
            proc = record["proc"]
            record["proc"] = None
        if proc is None:
            return
        if graceful:
            try:
                proc.send_signal(signal.SIGTERM)  # type: ignore[union-attr]
                proc.wait(timeout=self.drain_deadline + 5.0)
                return
            except subprocess.TimeoutExpired:
                pass
            except OSError:
                return
        try:
            proc.kill()  # type: ignore[union-attr]
            proc.wait(timeout=5.0)
        except (OSError, subprocess.TimeoutExpired):
            pass

    def stop(self) -> None:
        """Stop the monitor, then every shard (graceful, parallel-ish:
        one SIGTERM pass, then one wait pass)."""
        self._stop.set()
        with self._lock:
            monitor, self._monitor = self._monitor, None
            procs = []
            for record in self._shards.values():
                record["desired"] = False
                if record["proc"] is not None:
                    procs.append(record["proc"])
                    record["proc"] = None
        if monitor is not None:
            monitor.join(timeout=5.0)
        for proc in procs:
            try:
                proc.send_signal(signal.SIGTERM)
            except OSError:
                pass
        for proc in procs:
            try:
                proc.wait(timeout=self.drain_deadline + 5.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                try:
                    proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    pass
        self.events.flush()
