"""The mini-IR language: a small C-like language whose interpreter runs
on the simulated process, turning source programs into instrumented
traces (every syntactic load/store is a static instruction)."""

from repro.lang.ast import Program
from repro.lang.interp import Interpreter, RuntimeError_, run_source
from repro.lang.lexer import LangError, LexError, tokenize
from repro.lang.parser import ParseError, parse
from repro.lang.typesys import TypeTable

__all__ = [
    "Interpreter", "LangError", "LexError", "ParseError", "Program",
    "RuntimeError_", "TypeTable", "parse", "run_source", "tokenize",
]
