"""Control and Decomposition Component (CDC).

"The CDC acts as a hub to the profiling process.  It receives
information from the instruction probes, and queries the OMC to make the
information object-relative.  It then passes on the object-relative
stream to the separation and compression component." (Section 2.3)

Two modes are provided:

* :func:`translate_trace` -- offline: walk a recorded :class:`Trace`,
  drive the OMC from its object events, and yield the translated stream.
* :class:`OnlineCDC` -- online: a probe sink that translates and forwards
  each access as it fires, for profilers attached directly to a running
  process (this is how Table 1's dilation is measured).
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional

from repro.core.events import (
    AccessEvent,
    AccessKind,
    AllocEvent,
    FreeEvent,
    Trace,
)
from repro.core.omc import ObjectManager
from repro.core.tuples import WILD_GROUP, WILD_OBJECT, ObjectRelativeAccess


def translate_access(
    omc: ObjectManager, event: AccessEvent
) -> ObjectRelativeAccess:
    """Translate one access event against the current OMC state."""
    triple = omc.translate(event.address)
    if triple is None:
        group, serial, offset = WILD_GROUP, WILD_OBJECT, event.address
    else:
        group, serial, offset = triple
    return ObjectRelativeAccess(
        instruction_id=event.instruction_id,
        group=group,
        object_serial=serial,
        offset=offset,
        time=event.time,
        size=event.size,
        kind=event.kind,
    )


def translate_trace(
    trace: Trace, omc: Optional[ObjectManager] = None
) -> Iterator[ObjectRelativeAccess]:
    """Translate a whole trace into the object-relative stream.

    Object events update the OMC as they are encountered, so each access
    is resolved against the objects live *at its time* -- essential for
    correctness under address reuse, where one raw address names
    different objects at different times.

    The caller may pass (and keep) the ``omc`` to read auxiliary outputs
    afterwards; by default a fresh one is created.
    """
    if omc is None:
        omc = ObjectManager()
    for event in trace:
        if isinstance(event, AccessEvent):
            yield translate_access(omc, event)
        elif isinstance(event, AllocEvent):
            omc.on_alloc(event.address, event.size, event.site, event.type_name, event.time)
        elif isinstance(event, FreeEvent):
            omc.on_free(event.address, event.time)


def translate_trace_list(
    trace: Trace, omc: Optional[ObjectManager] = None
) -> List[ObjectRelativeAccess]:
    """Eager variant of :func:`translate_trace`."""
    return list(translate_trace(trace, omc))


class OnlineCDC:
    """Probe sink translating accesses on the fly.

    ``consumer`` receives each :class:`ObjectRelativeAccess` as it is
    produced -- typically a profiler's SCC.  The CDC owns the global
    time-stamp counter, incremented after every collected access, per
    Section 2.2.

    With enabled telemetry the CDC counts translations and wild-group
    fallbacks (``cdc.translated_total`` / ``cdc.wild_total``); the
    counting ``on_access`` is swapped in at construction so the default
    path is unchanged.
    """

    def __init__(
        self,
        consumer: Callable[[ObjectRelativeAccess], None],
        omc: Optional[ObjectManager] = None,
        telemetry=None,
    ) -> None:
        self.omc = omc if omc is not None else ObjectManager()
        self._consumer = consumer
        self._clock = 0
        if telemetry is not None and telemetry.enabled:
            self._translated_counter = telemetry.counter(
                "cdc.translated_total", "accesses made object-relative"
            )
            self._wild_counter = telemetry.counter(
                "cdc.wild_total", "accesses resolving to no live object"
            )
            self.on_access = self._on_access_counted  # type: ignore[method-assign]

    @property
    def clock(self) -> int:
        """Accesses collected so far."""
        return self._clock

    def on_access(
        self, instruction_id: int, address: int, size: int, kind: AccessKind
    ) -> None:
        triple = self.omc.translate(address)
        if triple is None:
            group, serial, offset = WILD_GROUP, WILD_OBJECT, address
        else:
            group, serial, offset = triple
        self._consumer(
            ObjectRelativeAccess(
                instruction_id=instruction_id,
                group=group,
                object_serial=serial,
                offset=offset,
                time=self._clock,
                size=size,
                kind=kind,
            )
        )
        self._clock += 1

    def _on_access_counted(
        self, instruction_id: int, address: int, size: int, kind: AccessKind
    ) -> None:
        self._translated_counter.inc()
        triple = self.omc.translate(address)
        if triple is None:
            self._wild_counter.inc()
            group, serial, offset = WILD_GROUP, WILD_OBJECT, address
        else:
            group, serial, offset = triple
        self._consumer(
            ObjectRelativeAccess(
                instruction_id=instruction_id,
                group=group,
                object_serial=serial,
                offset=offset,
                time=self._clock,
                size=size,
                kind=kind,
            )
        )
        self._clock += 1

    def on_alloc(
        self, address: int, size: int, site: str, type_name: Optional[str]
    ) -> None:
        self.omc.on_alloc(address, size, site, type_name, self._clock)

    def on_free(self, address: int) -> None:
        self.omc.on_free(address, self._clock)
