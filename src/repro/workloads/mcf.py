"""181.mcf stand-in: network-simplex minimum-cost flow.

mcf is the canonical pointer-chaser: two large arrays of structs (nodes
and arcs) traversed in data-dependent order.  Here both arrays are
single large heap objects -- so *within-object offsets* carry all the
irregularity -- and the simplex iterations visit arcs in a shuffled
order, reading arc fields and chasing to endpoint nodes, with
fixed-period flow and potential updates.

This is the benchmark where LEAP's linear compressor should capture the
least (the paper measures 6.5% of accesses): the chase offsets are
non-linear, so the descriptor budget exhausts immediately and only the
regular initialization and refresh sweeps compress.
"""

from __future__ import annotations

from repro.core.events import AccessKind
from repro.runtime.process import Process
from repro.workloads.base import REGISTRY, Workload

WORD = 8
NODE_BYTES = 48  # potential, supply, first-arc, ...
ARC_BYTES = 40  # cost, flow, tail, head, next


@REGISTRY.register
class McfWorkload(Workload):
    name = "mcf"
    description = "network simplex: shuffled pointer chasing over big arrays"

    def __init__(
        self,
        scale: float = 1.0,
        seed: int = 0,
        nodes: int = 900,
        arcs: int = 3600,
        iterations: int = 16,
        basket_size: int = 520,
    ) -> None:
        super().__init__(scale=scale, seed=seed)
        self.nodes = nodes
        self.arcs = arcs
        self.iterations = iterations
        self.basket_size = basket_size

    def run(self, process: Process) -> None:
        rng = self.rng()
        self.declare_cold_statics(process)
        node_count = self.scaled(self.nodes)
        arc_count = self.scaled(self.arcs)
        nodes = process.malloc("mcf.nodes", node_count * NODE_BYTES, type_name="node[]")
        arcs = process.malloc("mcf.arcs", arc_count * ARC_BYTES, type_name="arc[]")

        st_node_init = process.instruction("init.store_node", AccessKind.STORE)
        st_arc_init = process.instruction("init.store_arc", AccessKind.STORE)
        ld_arc_cost = process.instruction("simplex.load_arc_cost", AccessKind.LOAD)
        ld_arc_flow = process.instruction("simplex.load_arc_flow", AccessKind.LOAD)
        ld_tail_pot = process.instruction("simplex.load_tail_potential", AccessKind.LOAD)
        ld_head_pot = process.instruction("simplex.load_head_potential", AccessKind.LOAD)
        st_flow = process.instruction("simplex.store_arc_flow", AccessKind.STORE)
        st_potential = process.instruction("simplex.store_potential", AccessKind.STORE)
        ld_refresh = process.instruction("refresh.load_node", AccessKind.LOAD)

        self.run_startup(process, sites=1)
        # Regular initialization sweeps (the capturable part of mcf).
        for index in range(node_count):
            process.store(st_node_init, nodes + index * NODE_BYTES)
        endpoints = []
        for index in range(arc_count):
            process.store(st_arc_init, arcs + index * ARC_BYTES)
            endpoints.append(
                (rng.randrange(node_count), rng.randrange(node_count))
            )

        # Simplex iterations: shuffled arc baskets, pointer-chased nodes.
        arc_order = list(range(arc_count))
        for iteration in range(self.iterations):
            rng.shuffle(arc_order)
            basket = arc_order[: self.basket_size]
            for position, arc_index in enumerate(basket):
                arc = arcs + arc_index * ARC_BYTES
                process.load(ld_arc_cost, arc)
                process.load(ld_arc_flow, arc + WORD)
                tail, head = endpoints[arc_index]
                process.load(ld_tail_pot, nodes + tail * NODE_BYTES)
                process.load(ld_head_pot, nodes + head * NODE_BYTES)
                if position % 2 == 0:
                    process.store(st_flow, arc + WORD)
                if position % 8 == 0:
                    process.store(st_potential, nodes + tail * NODE_BYTES)
            if iteration % 4 == 0:
                # An occasional regular refresh pass over potentials.
                for index in range(0, node_count, 4):
                    process.load(ld_refresh, nodes + index * NODE_BYTES)

        process.free(nodes)
        process.free(arcs)
        self.run_shutdown(process, sites=1)
