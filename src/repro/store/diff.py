"""Structural profile diffing and regression detection.

Object-relative profiles are *comparable artifacts*: two runs of the
same workload produce documents whose per-(instruction, group) entries,
grammar sizes, and dependence frequencies line up key by key.  The
differ exploits that:

* **LEAP**: per-key LMAD drift -- entries added/removed, descriptor
  count changes, stride-set changes, total-access deltas -- plus
  profile-level movements of the Table 1 quality metrics (bytes per
  access, accesses captured, descriptors per entry).
* **WHOMP**: per-dimension grammar-size deltas (symbols per access is
  the OMSG compression ratio, so growth is compression degradation).
* **dependence**: per-(store, load) frequency changes in the MDF table.

The regression detector turns a diff into verdicts: compression-ratio
or capture degradation past a tolerance is flagged, so a CI job can
fail a run whose profile got structurally worse than the baseline
(``repro-profile diff`` exits nonzero exactly then).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple, Union

from repro.baselines.dependence_lossless import DependenceProfile
from repro.core.profile_io import (
    ProfileFormatError,
    document_from_bytes,
    profile_from_document,
)
from repro.profilers.leap import LeapProfile

#: default relative-growth tolerance for size/ratio regressions
DEFAULT_RATIO_TOLERANCE = 0.10

#: default absolute-drop tolerance for capture/regularity fractions
DEFAULT_CAPTURE_TOLERANCE = 0.05


@dataclasses.dataclass
class EntryDelta:
    """How one (instruction, group) LEAP entry moved between runs."""

    key: Tuple[int, int]
    lmads_a: int
    lmads_b: int
    total_a: int
    total_b: int
    strides_added: List[Tuple[int, ...]]
    strides_removed: List[Tuple[int, ...]]

    @property
    def changed(self) -> bool:
        return (
            self.lmads_a != self.lmads_b
            or self.total_a != self.total_b
            or bool(self.strides_added)
            or bool(self.strides_removed)
        )

    def to_json(self) -> Dict[str, object]:
        return {
            "instruction": self.key[0],
            "group": self.key[1],
            "lmads": [self.lmads_a, self.lmads_b],
            "total": [self.total_a, self.total_b],
            "strides_added": [list(s) for s in self.strides_added],
            "strides_removed": [list(s) for s in self.strides_removed],
        }


@dataclasses.dataclass
class Regression:
    """One detected degradation between baseline (a) and candidate (b)."""

    metric: str
    baseline: float
    candidate: float
    detail: str

    def to_json(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class ProfileDiff:
    """The structural comparison of two same-format profile documents.

    ``metrics`` holds the per-side summary numbers the regression
    detector consumes; the key sets and ``changed`` list carry the
    per-key drift for human inspection and the JSON report.
    """

    kind: str
    label_a: str
    label_b: str
    added_keys: List[object]
    removed_keys: List[object]
    changed: List[EntryDelta]
    metrics: Dict[str, Dict[str, float]]

    @property
    def identical(self) -> bool:
        return (
            not self.added_keys
            and not self.removed_keys
            and not self.changed
            and all(
                sides.get("a") == sides.get("b")
                for sides in self.metrics.values()
            )
        )

    def to_json(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "a": self.label_a,
            "b": self.label_b,
            "identical": self.identical,
            "added_keys": [list(k) if isinstance(k, tuple) else k
                           for k in self.added_keys],
            "removed_keys": [list(k) if isinstance(k, tuple) else k
                             for k in self.removed_keys],
            "changed": [delta.to_json() for delta in self.changed],
            "metrics": self.metrics,
        }


def _metric(a: float, b: float) -> Dict[str, float]:
    return {"a": a, "b": b}


# -- per-format diffs ---------------------------------------------------------


def diff_leap(a: LeapProfile, b: LeapProfile,
              label_a: str = "a", label_b: str = "b") -> ProfileDiff:
    keys_a = set(a.entries)
    keys_b = set(b.entries)
    changed: List[EntryDelta] = []
    for key in sorted(keys_a & keys_b):
        entry_a, entry_b = a.entries[key], b.entries[key]
        strides_a = {tuple(l.stride) for l in entry_a.lmads}
        strides_b = {tuple(l.stride) for l in entry_b.lmads}
        delta = EntryDelta(
            key=key,
            lmads_a=len(entry_a.lmads),
            lmads_b=len(entry_b.lmads),
            total_a=entry_a.total_symbols,
            total_b=entry_b.total_symbols,
            strides_added=sorted(strides_b - strides_a),
            strides_removed=sorted(strides_a - strides_b),
        )
        if delta.changed:
            changed.append(delta)

    def bytes_per_access(profile: LeapProfile) -> float:
        if not profile.access_count:
            return 0.0
        return profile.size_bytes() / profile.access_count

    def descriptors_per_entry(profile: LeapProfile) -> float:
        if not profile.entries:
            return 0.0
        total = sum(len(e.lmads) for e in profile.entries.values())
        return total / len(profile.entries)

    metrics = {
        "access_count": _metric(a.access_count, b.access_count),
        "entries": _metric(len(a.entries), len(b.entries)),
        "size_bytes": _metric(a.size_bytes(), b.size_bytes()),
        "bytes_per_access": _metric(bytes_per_access(a), bytes_per_access(b)),
        "accesses_captured": _metric(
            a.accesses_captured(), b.accesses_captured()
        ),
        "instructions_captured": _metric(
            a.instructions_captured(), b.instructions_captured()
        ),
        "descriptors_per_entry": _metric(
            descriptors_per_entry(a), descriptors_per_entry(b)
        ),
        "capture_completeness": _metric(
            a.capture_completeness, b.capture_completeness
        ),
    }
    return ProfileDiff(
        kind="leap",
        label_a=label_a,
        label_b=label_b,
        added_keys=sorted(keys_b - keys_a),
        removed_keys=sorted(keys_a - keys_b),
        changed=changed,
        metrics=metrics,
    )


def _whomp_grammar_symbols(document: Dict[str, object]) -> Dict[str, int]:
    """Per-dimension OMSG size (total RHS symbols) straight off the
    serialized document -- no grammar reconstruction needed."""
    sizes: Dict[str, int] = {}
    for name, grammar in document["grammars"].items():
        sizes[name] = sum(
            len(rhs) for rhs in grammar["productions"].values()
        )
    return sizes


def diff_whomp_documents(
    doc_a: Dict[str, object],
    doc_b: Dict[str, object],
    label_a: str = "a",
    label_b: str = "b",
) -> ProfileDiff:
    sizes_a = _whomp_grammar_symbols(doc_a)
    sizes_b = _whomp_grammar_symbols(doc_b)
    metrics: Dict[str, Dict[str, float]] = {}
    for name in sorted(set(sizes_a) | set(sizes_b)):
        metrics[f"grammar_symbols.{name}"] = _metric(
            sizes_a.get(name, 0), sizes_b.get(name, 0)
        )
    count_a = int(doc_a.get("access_count", 0))
    count_b = int(doc_b.get("access_count", 0))
    total_a = sum(sizes_a.values())
    total_b = sum(sizes_b.values())
    metrics["access_count"] = _metric(count_a, count_b)
    metrics["grammar_symbols.total"] = _metric(total_a, total_b)
    metrics["symbols_per_access"] = _metric(
        total_a / count_a if count_a else 0.0,
        total_b / count_b if count_b else 0.0,
    )
    metrics["groups"] = _metric(
        len(doc_a.get("group_labels", {})), len(doc_b.get("group_labels", {}))
    )
    metrics["capture_completeness"] = _metric(
        float(doc_a.get("capture_completeness", 1.0)),
        float(doc_b.get("capture_completeness", 1.0)),
    )
    return ProfileDiff(
        kind="whomp",
        label_a=label_a,
        label_b=label_b,
        added_keys=sorted(set(sizes_b) - set(sizes_a)),
        removed_keys=sorted(set(sizes_a) - set(sizes_b)),
        changed=[],
        metrics=metrics,
    )


def diff_dependence(
    a: DependenceProfile,
    b: DependenceProfile,
    label_a: str = "a",
    label_b: str = "b",
) -> ProfileDiff:
    keys_a = set(a.conflicts)
    keys_b = set(b.conflicts)
    changed: List[EntryDelta] = []
    for key in sorted(keys_a & keys_b):
        if a.conflicts[key] != b.conflicts[key]:
            changed.append(
                EntryDelta(
                    key=key,
                    lmads_a=0,
                    lmads_b=0,
                    total_a=a.conflicts[key],
                    total_b=b.conflicts[key],
                    strides_added=[],
                    strides_removed=[],
                )
            )
    metrics = {
        "conflict_pairs": _metric(len(keys_a), len(keys_b)),
        "conflict_total": _metric(
            sum(a.conflicts.values()), sum(b.conflicts.values())
        ),
    }
    return ProfileDiff(
        kind="dependence",
        label_a=label_a,
        label_b=label_b,
        added_keys=sorted(keys_b - keys_a),
        removed_keys=sorted(keys_a - keys_b),
        changed=changed,
        metrics=metrics,
    )


# -- entry points -------------------------------------------------------------


def diff_blobs(
    data_a: Union[bytes, bytearray],
    data_b: Union[bytes, bytearray],
    label_a: str = "a",
    label_b: str = "b",
) -> ProfileDiff:
    """Diff two serialized profile documents of the same format.

    Each side may be either encoding (JSON or BINCAP binary) -- the
    structural diff works off the decoded documents, so a binary run
    diffs cleanly against a JSON baseline.  Every malformed input
    raises :class:`ProfileFormatError` (parse failures included), never
    a bare ``json.JSONDecodeError``.
    """
    doc_a = document_from_bytes(data_a)
    doc_b = document_from_bytes(data_b)
    fmt_a = doc_a.get("format")
    fmt_b = doc_b.get("format")
    if fmt_a != fmt_b:
        raise ProfileFormatError(
            f"cannot diff a {fmt_a} profile against a {fmt_b} profile"
        )
    if fmt_a == "whomp":
        return diff_whomp_documents(doc_a, doc_b, label_a, label_b)
    a = profile_from_document(doc_a)
    b = profile_from_document(doc_b)
    if isinstance(a, LeapProfile) and isinstance(b, LeapProfile):
        return diff_leap(a, b, label_a, label_b)
    if isinstance(a, DependenceProfile) and isinstance(b, DependenceProfile):
        return diff_dependence(a, b, label_a, label_b)
    raise ProfileFormatError(f"format {fmt_a!r} has no structural diff")


def diff_texts(
    text_a: str, text_b: str, label_a: str = "a", label_b: str = "b"
) -> ProfileDiff:
    """Text-level convenience wrapper around :func:`diff_blobs`."""
    return diff_blobs(
        text_a.encode("utf-8"), text_b.encode("utf-8"), label_a, label_b
    )


def detect_regressions(
    diff: ProfileDiff,
    ratio_tolerance: float = DEFAULT_RATIO_TOLERANCE,
    capture_tolerance: float = DEFAULT_CAPTURE_TOLERANCE,
) -> List[Regression]:
    """Degradations from side a (baseline) to side b (candidate).

    Two families of checks:

    * *ratio metrics* (bytes per access, symbols per access,
      descriptors per entry) regress when they **grow** by more than
      ``ratio_tolerance`` relative -- the profile compresses worse or
      the accesses got less regular;
    * *capture metrics* (accesses/instructions captured, capture
      completeness) regress when they **drop** by more than
      ``capture_tolerance`` absolute.
    """
    regressions: List[Regression] = []
    ratio_metrics = {
        "bytes_per_access": "LEAP profile grew per access (compression-"
        "ratio degradation)",
        "symbols_per_access": "OMSG grammar grew per access (compression-"
        "ratio degradation)",
        "descriptors_per_entry": "more LMADs needed per entry (stride-"
        "regularity degradation)",
    }
    capture_metrics = {
        "accesses_captured": "fewer accesses captured inside LMADs",
        "instructions_captured": "fewer instructions completely captured",
        "capture_completeness": "more tuples quarantined during capture",
    }
    for name, explanation in ratio_metrics.items():
        sides = diff.metrics.get(name)
        if not sides:
            continue
        baseline, candidate = sides["a"], sides["b"]
        if baseline > 0 and candidate > baseline * (1.0 + ratio_tolerance):
            regressions.append(
                Regression(name, baseline, candidate, explanation)
            )
    for name, explanation in capture_metrics.items():
        sides = diff.metrics.get(name)
        if not sides:
            continue
        baseline, candidate = sides["a"], sides["b"]
        if candidate < baseline - capture_tolerance:
            regressions.append(
                Regression(name, baseline, candidate, explanation)
            )
    return regressions


def render_diff(diff: ProfileDiff, regressions: List[Regression]) -> str:
    """Human-readable diff report (the CLI's default output)."""
    lines = [
        f"{diff.kind} diff: {diff.label_a} -> {diff.label_b}"
        + ("  (identical)" if diff.identical else ""),
    ]
    if diff.added_keys:
        lines.append(f"  added keys ({len(diff.added_keys)}): "
                     + ", ".join(str(k) for k in diff.added_keys[:8])
                     + ("..." if len(diff.added_keys) > 8 else ""))
    if diff.removed_keys:
        lines.append(f"  removed keys ({len(diff.removed_keys)}): "
                     + ", ".join(str(k) for k in diff.removed_keys[:8])
                     + ("..." if len(diff.removed_keys) > 8 else ""))
    for delta in diff.changed[:12]:
        parts = []
        if delta.lmads_a != delta.lmads_b:
            parts.append(f"LMADs {delta.lmads_a}->{delta.lmads_b}")
        if delta.total_a != delta.total_b:
            parts.append(f"total {delta.total_a}->{delta.total_b}")
        if delta.strides_added:
            parts.append(f"+strides {delta.strides_added}")
        if delta.strides_removed:
            parts.append(f"-strides {delta.strides_removed}")
        lines.append(f"  {delta.key}: " + ", ".join(parts))
    if len(diff.changed) > 12:
        lines.append(f"  ... {len(diff.changed) - 12} more changed keys")
    lines.append("  metrics:")
    for name, sides in sorted(diff.metrics.items()):
        a, b = sides["a"], sides["b"]
        marker = "" if a == b else "  *"
        lines.append(f"    {name:<28} {a:>12.4g} -> {b:<12.4g}{marker}")
    if regressions:
        lines.append(f"  REGRESSIONS ({len(regressions)}):")
        for regression in regressions:
            lines.append(
                f"    {regression.metric}: {regression.baseline:.4g} -> "
                f"{regression.candidate:.4g}  ({regression.detail})"
            )
    else:
        lines.append("  no regressions detected")
    return "\n".join(lines)
