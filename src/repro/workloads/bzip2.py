"""256.bzip2 stand-in: block-sorting compression.

bzip2 processes input in large independent blocks: each block gets a
data buffer and a pointer/index array (heap objects from two sites),
filled with regular strides, then sorted -- the sort's comparison loads
jump around the data buffer in a data-dependent order -- and finally
emitted with a regular output sweep.

Per-block processing repeats an identical pattern over fresh objects
(good for OMSG); the sort phase is irregular inside each block (hard
for LMADs), giving bzip2 its mid-pack capture rate.
"""

from __future__ import annotations

from repro.core.events import AccessKind
from repro.runtime.process import Process
from repro.workloads.base import REGISTRY, Workload

WORD = 8


@REGISTRY.register
class Bzip2Workload(Workload):
    name = "bzip2"
    description = "block sorter: strided block fill + data-dependent sort probes"

    def __init__(
        self,
        scale: float = 1.0,
        seed: int = 0,
        blocks: int = 32,
        block_words: int = 440,
        sort_rounds: int = 3,
    ) -> None:
        super().__init__(scale=scale, seed=seed)
        self.blocks = blocks
        self.block_words = block_words
        self.sort_rounds = sort_rounds

    def run(self, process: Process) -> None:
        rng = self.rng()
        self.declare_cold_statics(process)
        st_fill = process.instruction("read.store_block", AccessKind.STORE)
        st_index_init = process.instruction("read.store_index", AccessKind.STORE)
        ld_index = process.instruction("sort.load_index", AccessKind.LOAD)
        ld_cmp_a = process.instruction("sort.load_compare_a", AccessKind.LOAD)
        ld_cmp_b = process.instruction("sort.load_compare_b", AccessKind.LOAD)
        st_index_swap = process.instruction("sort.store_index", AccessKind.STORE)
        ld_emit = process.instruction("mtf.load_block", AccessKind.LOAD)
        st_out = process.instruction("mtf.store_output", AccessKind.STORE)

        st_meta = process.instruction("read.store_block_meta", AccessKind.STORE)
        ld_meta = process.instruction("verify.load_block_meta", AccessKind.LOAD)

        self.run_startup(process, sites=4)

        words = self.block_words
        blocks = self.scaled(self.blocks)
        # Per-block metadata structs, allocated adjacently up front.
        metas = [
            process.malloc("bzip2.block_meta", 48, type_name="meta")
            for __ in range(blocks)
        ]
        for block_number in range(blocks):
            data = process.malloc("bzip2.block", words * WORD, type_name="byte[]")
            index = process.malloc("bzip2.index", words * WORD, type_name="int[]")
            out = process.malloc("bzip2.output", words * WORD, type_name="byte[]")

            # Fill: regular strides.
            for w in range(words):
                process.store(st_fill, data + w * WORD)
                process.store(st_index_init, index + w * WORD)

            # Sort rounds: walk the index regularly, compare at
            # data-dependent positions in the block.
            for __ in range(self.sort_rounds):
                for w in range(0, words, 2):
                    process.load(ld_index, index + w * WORD)
                    a = rng.randrange(words)
                    b = rng.randrange(words)
                    for k in range(2):
                        process.load(ld_cmp_a, data + ((a + k) % words) * WORD)
                        process.load(ld_cmp_b, data + ((b + k) % words) * WORD)
                    if w % 4 == 0:
                        process.store(st_index_swap, index + w * WORD)

            # Emit: regular sweep of block through MTF to the output.
            for w in range(words):
                process.load(ld_emit, data + w * WORD)
                process.store(st_out, out + w * WORD)

            process.store(st_meta, metas[block_number])

            process.free(data)
            process.free(index)
            process.free(out)
        # Verify pass: walk the metadata structs in allocation order --
        # strongly strided raw addresses, cross-object for LEAP.
        for meta in metas:
            process.load(ld_meta, meta)
        for meta in metas:
            process.free(meta)
        self.run_shutdown(process, sites=2)
