"""Streaming quantile estimation for request latencies.

The SLO layer needs p50/p95/p99 over thousands of request latencies
without keeping the samples.  The estimator here is a **geometric
bucket histogram** (the HDR-histogram idea, sized for wall-clock
seconds): bucket upper edges grow by a fixed factor from
``min_value`` to ``max_value``, so memory is a few hundred integers
and the relative error of any quantile is bounded by the growth
factor -- with the default 1.07, about 3.5% -- independent of the
distribution.  That bound is what the accuracy tests assert against
known distributions.

Estimates interpolate within the winning bucket at its geometric
midpoint, values below ``min_value`` clamp into the first bucket and
values above ``max_value`` into the overflow bucket (whose estimate is
the exact observed maximum).  Digests merge, so per-endpoint digests
can be combined into a service-wide one, and round-trip through plain
data for ``/metricsz`` and trace documents.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

#: default smallest resolvable latency (seconds)
DEFAULT_MIN_VALUE = 1e-6

#: default largest bucketed latency (seconds); beyond is the overflow
DEFAULT_MAX_VALUE = 3600.0

#: default bucket growth factor: ~3.5% worst-case relative error
DEFAULT_GROWTH = 1.07

#: the quantiles every summary reports
SUMMARY_QUANTILES = (0.5, 0.95, 0.99)


class QuantileDigest:  # repro: synchronized-externally
    """Bounded-error streaming quantiles over positive values.

    >>> digest = QuantileDigest()
    >>> for value in range(1, 1001):
    ...     digest.observe(value / 1000.0)
    >>> abs(digest.quantile(0.5) - 0.5) < 0.05
    True
    >>> digest.count
    1000
    """

    __slots__ = ("min_value", "max_value", "growth", "_edges", "_counts",
                 "count", "sum", "minimum", "maximum")

    def __init__(
        self,
        min_value: float = DEFAULT_MIN_VALUE,
        max_value: float = DEFAULT_MAX_VALUE,
        growth: float = DEFAULT_GROWTH,
    ) -> None:
        if not 0 < min_value < max_value:
            raise ValueError("need 0 < min_value < max_value")
        if growth <= 1.0:
            raise ValueError("growth factor must exceed 1.0")
        self.min_value = min_value
        self.max_value = max_value
        self.growth = growth
        edges: List[float] = [min_value]
        while edges[-1] < max_value:
            edges.append(edges[-1] * growth)
        self._edges: Tuple[float, ...] = tuple(edges)
        # one count per edge, plus the overflow bucket
        self._counts: List[int] = [0] * (len(edges) + 1)
        self.count = 0
        self.sum = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def _bucket(self, value: float) -> int:
        if value <= self.min_value:
            return 0
        if value > self._edges[-1]:
            return len(self._counts) - 1
        # log-index straight into the geometric grid, then nudge for
        # float rounding at the edges
        index = int(math.log(value / self.min_value) / math.log(self.growth))
        index = min(index, len(self._edges) - 1)
        while index > 0 and value <= self._edges[index - 1]:
            index -= 1
        while value > self._edges[index]:
            index += 1
        return index

    def observe(self, value: float) -> None:
        value = float(value)
        if value < 0.0 or not math.isfinite(value):
            raise ValueError(f"latency must be finite and >= 0, got {value}")
        self._counts[self._bucket(value)] += 1
        self.count += 1
        self.sum += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    # -- estimation ----------------------------------------------------

    def quantile(self, q: float) -> Optional[float]:
        """The estimated ``q``-quantile, or ``None`` when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return None
        rank = q * (self.count - 1) + 1  # 1-based target rank
        running = 0
        for index, bucket_count in enumerate(self._counts):
            running += bucket_count
            if running >= rank:
                estimate = self._bucket_midpoint(index)
                # never estimate outside the observed range
                assert self.minimum is not None and self.maximum is not None
                return min(max(estimate, self.minimum), self.maximum)
        return self.maximum

    def _bucket_midpoint(self, index: int) -> float:
        if index >= len(self._edges):
            # overflow: the exact max is the only honest answer
            return self.maximum if self.maximum is not None else self.max_value
        upper = self._edges[index]
        lower = self._edges[index - 1] if index > 0 else 0.0
        if lower <= 0.0:
            return upper / 2.0
        return math.sqrt(lower * upper)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    # -- composition / wire form ---------------------------------------

    def merge(self, other: "QuantileDigest") -> None:
        """Fold ``other`` into this digest (must share the geometry)."""
        if (self.min_value, self.max_value, self.growth) != (
            other.min_value, other.max_value, other.growth
        ):
            raise ValueError("cannot merge digests with different geometry")
        for index, bucket_count in enumerate(other._counts):
            self._counts[index] += bucket_count
        self.count += other.count
        self.sum += other.sum
        for value in (other.minimum, other.maximum):
            if value is None:
                continue
            if self.minimum is None or value < self.minimum:
                self.minimum = value
            if self.maximum is None or value > self.maximum:
                self.maximum = value

    def summary(self) -> Dict[str, object]:
        """The ``/metricsz`` view: count, mean, extremes, p50/p95/p99."""
        out: Dict[str, object] = {
            "count": self.count,
            "sum_seconds": self.sum,
            "mean_seconds": self.mean,
            "min_seconds": self.minimum,
            "max_seconds": self.maximum,
        }
        for q in SUMMARY_QUANTILES:
            out[f"p{int(q * 100)}_seconds"] = self.quantile(q)
        return out

    def to_plain(self) -> Dict[str, object]:
        return {
            "min_value": self.min_value,
            "max_value": self.max_value,
            "growth": self.growth,
            "counts": list(self._counts),
            "count": self.count,
            "sum": self.sum,
            "minimum": self.minimum,
            "maximum": self.maximum,
        }

    @classmethod
    def from_plain(cls, data: Dict[str, object]) -> "QuantileDigest":
        digest = cls(
            min_value=float(data["min_value"]),
            max_value=float(data["max_value"]),
            growth=float(data["growth"]),
        )
        counts = [int(c) for c in data["counts"]]
        if len(counts) != len(digest._counts):
            raise ValueError("digest geometry does not match its counts")
        digest._counts = counts
        digest.count = int(data["count"])
        digest.sum = float(data["sum"])
        digest.minimum = (
            float(data["minimum"]) if data.get("minimum") is not None else None
        )
        digest.maximum = (
            float(data["maximum"]) if data.get("maximum") is not None else None
        )
        return digest

    def __repr__(self) -> str:
        return f"QuantileDigest(n={self.count}, mean={self.mean:g}s)"


def digest_of(values: Sequence[float], **kwargs) -> QuantileDigest:
    """A digest over a finished sample (tests, SLO evaluation)."""
    digest = QuantileDigest(**kwargs)
    for value in values:
        digest.observe(value)
    return digest
