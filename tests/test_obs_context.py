"""TraceContext: ids, the header protocol, and the ambient stack."""

import re
import threading

from repro.obs.context import (
    TRACE_HEADER,
    TraceContext,
    activate,
    current,
    current_header,
    new_span_id,
    new_trace_id,
    set_current,
)


class TestIds:
    def test_trace_id_is_32_hex(self):
        assert re.fullmatch(r"[0-9a-f]{32}", new_trace_id())

    def test_span_id_is_16_hex(self):
        assert re.fullmatch(r"[0-9a-f]{16}", new_span_id())

    def test_fresh_ids_differ(self):
        assert new_trace_id() != new_trace_id()
        assert new_span_id() != new_span_id()


class TestTraceContext:
    def test_new_has_no_parent(self):
        context = TraceContext.new()
        assert context.parent_id is None

    def test_child_shares_trace_and_links_parent(self):
        parent = TraceContext.new()
        child = parent.child()
        assert child.trace_id == parent.trace_id
        assert child.span_id != parent.span_id
        assert child.parent_id == parent.span_id

    def test_header_round_trip(self):
        context = TraceContext.new()
        parsed = TraceContext.from_header(context.to_header())
        assert parsed is not None
        assert parsed.trace_id == context.trace_id
        assert parsed.span_id == context.span_id

    def test_header_name_is_stable(self):
        # The wire protocol: daemon and clients must agree forever.
        assert TRACE_HEADER == "X-Repro-Trace"

    def test_malformed_headers_parse_to_none(self):
        for bad in (
            None,
            "",
            "nonsense",
            "deadbeef-cafe",  # too short
            "g" * 32 + "-" + "0" * 16,  # non-hex
            "0" * 32 + ":" + "0" * 16,  # wrong separator
            "0" * 33 + "-" + "0" * 16,  # too long
        ):
            assert TraceContext.from_header(bad) is None

    def test_header_parse_tolerates_case_and_whitespace(self):
        context = TraceContext.new()
        parsed = TraceContext.from_header(
            "  " + context.to_header().upper() + " "
        )
        assert parsed == TraceContext(context.trace_id, context.span_id)

    def test_equality_and_hash(self):
        context = TraceContext("ab" * 16, "cd" * 8)
        twin = TraceContext("ab" * 16, "cd" * 8)
        assert context == twin
        assert hash(context) == hash(twin)
        assert context != twin.child()


class TestAmbient:
    def teardown_method(self):
        set_current(None)

    def test_process_context(self):
        context = TraceContext.new()
        set_current(context)
        assert current() is context
        assert current_header() == context.to_header()
        set_current(None)
        assert current() is None
        assert current_header() is None

    def test_activation_nests_and_pops(self):
        outer = TraceContext.new()
        inner = outer.child()
        with activate(outer):
            assert current() is outer
            with activate(inner):
                assert current() is inner
            assert current() is outer
        assert current() is None

    def test_thread_stack_shadows_process_context(self):
        process_ctx = TraceContext.new()
        set_current(process_ctx)
        scoped = process_ctx.child()
        with activate(scoped):
            assert current() is scoped
        assert current() is process_ctx

    def test_threads_have_independent_stacks(self):
        set_current(TraceContext.new())
        seen = {}

        def probe():
            # The other thread's activations must not leak here; the
            # process-wide fallback still applies.
            seen["context"] = current()

        with activate(TraceContext.new()):
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
        assert seen["context"] is current()
