"""Store-backed cross-run regression sweep (PROFSTORE).

Not a figure from the paper, but the workflow its artifacts exist for:
profile every benchmark twice (the context's seed as baseline, seed+1
as candidate -- a different heap layout over the same program shape),
ingest all four documents per benchmark into a throwaway profile
store, and diff baseline against candidate through the store's query
engine.  Object-relative profiles should shrug off an allocation-seed
change -- that is the paper's whole invariance argument -- so the
sweep reports, per benchmark, the LMAD-entry drift and whether the
regression detector fired on compression ratio or capture quality.
"""

from __future__ import annotations

import tempfile
from typing import Dict, List

from repro.profilers.leap import LeapProfiler
from repro.profilers.whomp import WhompProfiler
from repro.store.diff import detect_regressions, diff_texts
from repro.store.store import ProfileStore
from repro.workloads.registry import create


def run(context) -> Dict[str, object]:
    rows: List[Dict[str, object]] = []
    with tempfile.TemporaryDirectory(prefix="repro-storereg-") as root:
        store = ProfileStore(root)
        for name in context.benchmarks:
            store.ingest_profile(
                context.leap(name), name, meta={"seed": context.seed}
            )
            store.ingest_profile(
                context.whomp(name), name, meta={"seed": context.seed}
            )
            variant_trace = create(
                name, scale=context.scale, seed=context.seed + 1
            ).trace(allocator=context.allocator)
            store.ingest_profile(
                LeapProfiler().profile(variant_trace),
                name,
                meta={"seed": context.seed + 1},
            )
            store.ingest_profile(
                WhompProfiler().profile(variant_trace),
                name,
                meta={"seed": context.seed + 1},
            )
            row: Dict[str, object] = {"benchmark": name}
            for kind in ("leap", "whomp"):
                diff = diff_texts(
                    store.get_text(f"{name}@{kind}~1"),
                    store.get_text(f"{name}@{kind}"),
                    label_a=f"{name} seed {context.seed}",
                    label_b=f"{name} seed {context.seed + 1}",
                )
                regressions = detect_regressions(diff)
                row[kind] = {
                    "identical": diff.identical,
                    "added_keys": len(diff.added_keys),
                    "removed_keys": len(diff.removed_keys),
                    "changed_keys": len(diff.changed),
                    "regressions": [r.metric for r in regressions],
                }
            rows.append(row)
        snapshot = store.stats()
    return {
        "rows": rows,
        "runs_ingested": snapshot["runs"],
        "blobs": snapshot["blobs"],
        "stored_bytes": snapshot["stored_bytes"],
        "benchmarks_regressed": sum(
            1
            for row in rows
            if row["leap"]["regressions"] or row["whomp"]["regressions"]
        ),
    }


def render(results: Dict[str, object]) -> str:
    lines = [
        "Store-backed regression sweep: seed vs seed+1 through PROFSTORE",
        "",
        f"{'benchmark':<12} {'leap drift (+/-/~)':>20} {'whomp':>7} "
        f"{'regressions':>12}",
    ]
    for row in results["rows"]:
        leap = row["leap"]
        whomp = row["whomp"]
        drift = (
            f"{leap['added_keys']}/{leap['removed_keys']}/"
            f"{leap['changed_keys']}"
        )
        regressed = sorted(set(leap["regressions"]) | set(whomp["regressions"]))
        lines.append(
            f"{row['benchmark']:<12} {drift:>20} "
            f"{'same' if whomp['identical'] else 'drift':>7} "
            f"{', '.join(regressed) if regressed else '-':>12}"
        )
    lines.append("")
    lines.append(
        f"{results['runs_ingested']} runs ingested into "
        f"{results['blobs']} blobs ({results['stored_bytes']} compressed "
        f"bytes); {results['benchmarks_regressed']} benchmark(s) flagged"
    )
    return "\n".join(lines)
