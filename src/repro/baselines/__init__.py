"""Re-implemented comparison profilers from the paper's evaluation."""

from repro.baselines.connors import DEFAULT_WINDOW, ConnorsProfiler
from repro.baselines.dependence_lossless import (
    DependenceProfile,
    LosslessDependenceProfiler,
)
from repro.baselines.rasg import RasgProfile, RasgProfiler
from repro.baselines.stride_lossless import (
    MIN_SAMPLES,
    STRONG_THRESHOLD,
    LosslessStrideProfiler,
    StrideProfile,
)

__all__ = [
    "ConnorsProfiler", "DEFAULT_WINDOW", "DependenceProfile",
    "LosslessDependenceProfiler", "LosslessStrideProfiler", "MIN_SAMPLES",
    "RasgProfile", "RasgProfiler", "STRONG_THRESHOLD", "StrideProfile",
]
