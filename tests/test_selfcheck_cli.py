"""``repro-lint`` CLI: exit codes, baselines, fixtures, acceptance."""

import json
import textwrap

import pytest

from repro.selfcheck import engine
from repro.selfcheck.cli import main
from repro.selfcheck.loader import SelfCheckError

DEFECT = textwrap.dedent(
    """\
    import os


    def swap(a, b):
        os.replace(a, b)
    """
)


@pytest.fixture
def defect_file(tmp_path):
    target = tmp_path / "defect.py"
    target.write_text(DEFECT)
    return str(target)


class TestExitCodes:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("def f():\n    return 1\n")
        assert main([str(clean)]) == 0
        assert "0 finding(s)" in capsys.readouterr().err

    def test_findings_exit_one(self, defect_file, capsys):
        assert main([defect_file]) == 1
        out = capsys.readouterr().out
        assert "RL132" in out

    def test_missing_paths_is_usage_error(self):
        with pytest.raises(SystemExit) as info:
            main([])
        assert info.value.code == 2

    def test_syntax_error_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        assert main([str(bad)]) == 2
        assert "error" in capsys.readouterr().err


class TestBaseline:
    def test_write_then_check_round_trip(self, defect_file, tmp_path, capsys):
        baseline = str(tmp_path / "base.json")
        assert main(["--baseline", baseline, "--write-baseline",
                     defect_file]) == 0
        # the recorded fingerprint silences the finding
        assert main(["--baseline", baseline, defect_file]) == 0
        assert "1 baselined" in capsys.readouterr().err

    def test_new_finding_breaks_through_baseline(
        self, defect_file, tmp_path, capsys
    ):
        baseline = str(tmp_path / "base.json")
        main(["--baseline", baseline, "--write-baseline", defect_file])
        with open(defect_file, "a") as handle:
            handle.write("\n\ndef save(p):\n    open(p, \"w\")\n")
        assert main(["--baseline", baseline, defect_file]) == 1
        assert "1 new, 1 baselined" in capsys.readouterr().err

    def test_malformed_baseline_exits_two(self, defect_file, tmp_path):
        baseline = tmp_path / "base.json"
        baseline.write_text("not json")
        assert main(["--baseline", str(baseline), defect_file]) == 2

    def test_shipped_baseline_is_empty(self):
        fingerprints = engine.load_baseline(".reprolint-baseline.json")
        assert fingerprints == set()


class TestJsonOutput:
    def test_json_parses_and_carries_counts(self, defect_file, capsys):
        assert main(["--format", "json", defect_file]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "reprolint"
        assert payload["new"] == 1
        assert payload["baselined"] == 0
        (finding,) = payload["findings"]
        assert finding["code"] == "RL132"
        assert finding["fingerprint"]


class TestFixturesSelfTest:
    def test_fixture_selftest_passes(self, capsys):
        assert main(["--fixtures"]) == 0
        out = capsys.readouterr().out
        assert "seeded defects detected" in out

    def test_selftest_covers_every_code(self):
        result = engine.fixture_selftest()
        assert result.ok
        assert not result.missing
        assert not result.uncovered


class TestAcceptance:
    def test_production_tree_is_clean(self):
        # the headline acceptance criterion: zero findings over src/
        # with the shipped (empty) baseline
        assert engine.analyze_paths(["src/repro"]) == []
