"""Figure 5 bench: OMSG vs RASG compression across the suite.

Regenerates the figure's rows and asserts its shape: the OMSG is
smaller than the RASG on average by a meaningful margin (the paper
reports 22%), with no benchmark regressing badly.
"""

from conftest import once

from repro.experiments import fig5


def test_fig5_compression(benchmark, context):
    results = once(benchmark, fig5.run, context)
    print()
    print(fig5.render(results))

    improvements = [row["improvement"] for row in results["rows"]]
    # shape: OMSG wins on average by >= 10%, every benchmark non-negative
    assert results["average_improvement"] > 0.10
    assert all(improvement > -0.02 for improvement in improvements)
    # and the WHOMP profiles really are lossless (spot check one)
    name = results["rows"][0]["benchmark"]
    whomp = context.whomp(name)
    trace = context.trace(name)
    raw = [(e.instruction_id, e.address) for e in trace.accesses()]
    assert whomp.reconstruct_accesses() == raw


def test_fig5_whomp_profiling_throughput(benchmark, context):
    """Kernel benchmark: WHOMP profiling of one trace (gzip)."""
    from repro.profilers.whomp import WhompProfiler

    trace = context.trace("gzip")
    profile = once(benchmark, WhompProfiler().profile, trace)
    assert profile.access_count == trace.access_count
