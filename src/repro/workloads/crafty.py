"""186.crafty stand-in: chess search.

crafty's data traffic splits between small, hot, statically allocated
bitboard state -- each evaluation term reads *its own* board slot, i.e.
a constant address, every position -- and a large transposition table
probed at hash-random slots with periodic replacement stores.
Killer/history heuristic arrays add updates at data-dependent indices.

The constant-location evaluation loads compress into single LMADs
(LEAP captures them completely) while the transposition and history
traffic defeats linear compression -- the roughly 50/50 capture split
the paper reports for crafty.
"""

from __future__ import annotations

from repro.core.events import AccessKind
from repro.runtime.process import Process
from repro.workloads.base import REGISTRY, Workload

WORD = 8
TRANS_ENTRY = 16  # key + packed move/score

#: number of distinct evaluation terms (each reads one fixed bitboard)
EVAL_TERMS = 10


@REGISTRY.register
class CraftyWorkload(Workload):
    name = "crafty"
    description = "chess search: bitboard evaluation + hashed transposition probes"

    def __init__(
        self,
        scale: float = 1.0,
        seed: int = 0,
        positions: int = 1400,
        trans_slots: int = 8192,
        board_words: int = 64,
        history_words: int = 512,
    ) -> None:
        super().__init__(scale=scale, seed=seed)
        self.positions = positions
        self.trans_slots = trans_slots
        self.board_words = board_words
        self.history_words = history_words

    def run(self, process: Process) -> None:
        rng = self.rng()
        self.declare_cold_statics(process)
        process.declare_static(
            "trans_table", self.trans_slots * TRANS_ENTRY, type_name="hash_entry[]"
        )
        process.declare_static(
            "bitboards", self.board_words * WORD, type_name="bitboard[]"
        )
        process.declare_static("history", self.history_words * WORD, type_name="int[]")
        process.declare_static("search_state", 2 * WORD, type_name="state")
        trans = process.static("trans_table").address
        boards = process.static("bitboards").address
        history = process.static("history").address

        ld_eval = [
            process.instruction(f"evaluate.load_term_{term}", AccessKind.LOAD)
            for term in range(EVAL_TERMS)
        ]
        ld_probe = [
            process.instruction(f"hash.load_probe_{k}", AccessKind.LOAD)
            for k in range(4)
        ]
        st_replace_key = process.instruction("hash.store_key", AccessKind.STORE)
        st_replace_val = process.instruction("hash.store_value", AccessKind.STORE)
        ld_hist = [
            process.instruction(f"order.load_history_{k}", AccessKind.LOAD)
            for k in range(2)
        ]
        st_hist = [
            process.instruction(f"order.store_history_{k}", AccessKind.STORE)
            for k in range(2)
        ]
        ld_nodes = process.instruction("search.load_node_count", AccessKind.LOAD)
        st_nodes = process.instruction("search.store_node_count", AccessKind.STORE)
        st_make = process.instruction("make_move.store_bitboard", AccessKind.STORE)
        st_unmake = process.instruction("unmake_move.store_bitboard", AccessKind.STORE)
        counter = process.static("search_state").address

        st_init_board = process.instruction("initialize.store_bitboard", AccessKind.STORE)

        self.run_startup(process, sites=2)
        # One-time board setup: the long-distance producer for the
        # evaluation terms' loads.
        for word in range(self.board_words):
            process.store(st_init_board, boards + word * WORD)
        for __ in range(self.scaled(self.positions)):
            # Search bookkeeping: node counter scalar, every position.
            process.load(ld_nodes, counter)
            process.store(st_nodes, counter)
            # Evaluation: each term reads its own fixed bitboard slot.
            for term, instr in enumerate(ld_eval):
                process.load(instr, boards + (term * 5 % self.board_words) * WORD)
            # Transposition probe: key+value of a two-slot bucket, then
            # always-replace stores (crafty's replacement policy).
            slot = rng.randrange(self.trans_slots - 1)
            process.load(ld_probe[0], trans + slot * TRANS_ENTRY)
            process.load(ld_probe[1], trans + slot * TRANS_ENTRY + WORD)
            process.load(ld_probe[2], trans + (slot + 1) * TRANS_ENTRY)
            process.load(ld_probe[3], trans + (slot + 1) * TRANS_ENTRY + WORD)
            process.store(st_replace_key, trans + slot * TRANS_ENTRY)
            process.store(st_replace_val, trans + slot * TRANS_ENTRY + WORD)
            # Move ordering: two history-counter updates.
            for k in range(2):
                move = rng.randrange(self.history_words)
                process.load(ld_hist[k], history + move * WORD)
                process.store(st_hist[k], history + move * WORD)
            # Make/unmake: data-dependent bitboard writes.
            board = rng.randrange(self.board_words)
            process.store(st_make, boards + board * WORD)
            process.store(st_unmake, boards + board * WORD)
        self.run_shutdown(process, sites=2)
