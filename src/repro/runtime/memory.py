"""Simulated virtual address space.

The paper profiles native processes whose data lives in three regions --
statically linked data, the heap, and the stack.  The artifacts that
object-relative profiling removes (Section 1 of the paper) come precisely
from how those regions are laid out:

* the *linker* places static data after the code segment, so inserting
  probes moves every static object;
* the *allocator* hands out heap addresses that depend on allocation
  history and policy;
* the *OS* may randomize segment bases between runs.

This module provides the substrate on which all of that is simulated: a
byte-granular 64-bit address space divided into segments.  Nothing here
stores data values -- the profilers only ever observe *addresses* -- but
segment bookkeeping is strict so that out-of-segment traffic is caught as
a bug in a workload rather than silently profiled.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

#: Default machine word size in bytes (the paper's platform is IA-64).
WORD_SIZE = 8

#: Page size used for segment alignment, mirroring a 4 KiB-paged OS.
PAGE_SIZE = 4096


class SegmentKind(enum.Enum):
    """The classes of memory a simulated process can touch."""

    CODE = "code"
    STATIC = "static"
    HEAP = "heap"
    STACK = "stack"


class MemoryError_(Exception):
    """Raised on invalid simulated-memory operations.

    Named with a trailing underscore to avoid shadowing the Python
    built-in ``MemoryError``.
    """


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to the next multiple of ``alignment``.

    >>> align_up(13, 8)
    16
    >>> align_up(16, 8)
    16
    """
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return (value + alignment - 1) // alignment * alignment


@dataclass(frozen=True)
class Segment:
    """A contiguous region of the simulated address space."""

    kind: SegmentKind
    base: int
    size: int

    def __post_init__(self) -> None:
        if self.base < 0 or self.size <= 0:
            raise MemoryError_(
                f"invalid segment {self.kind}: base={self.base} size={self.size}"
            )

    @property
    def limit(self) -> int:
        """One past the last valid address of the segment."""
        return self.base + self.size

    def contains(self, address: int, length: int = 1) -> bool:
        """Whether ``[address, address+length)`` lies inside the segment."""
        return self.base <= address and address + length <= self.limit


class AddressSpace:
    """The address space of one simulated process.

    The layout follows the classic Unix picture: code at the bottom,
    static data immediately above it, a large heap above that, and the
    stack near the top growing down.  Two knobs deliberately perturb the
    layout so experiments can reproduce the run-to-run artifacts the
    paper describes:

    ``code_size``
        Size of the code segment.  Instrumentation grows code, which
        *shifts every static object* -- the paper's third artifact.
    ``os_offset``
        Extra offset added to every segment base, standing in for OS
        base randomization.

    >>> space = AddressSpace()
    >>> space.heap.contains(space.heap.base)
    True
    """

    def __init__(
        self,
        code_size: int = 1 << 20,
        static_size: int = 1 << 22,
        heap_size: int = 1 << 30,
        stack_size: int = 1 << 23,
        os_offset: int = 0,
    ) -> None:
        if os_offset < 0 or os_offset % PAGE_SIZE:
            raise MemoryError_(
                f"os_offset must be a non-negative page multiple, got {os_offset}"
            )
        base = PAGE_SIZE + os_offset  # leave page zero unmapped
        self.code = Segment(SegmentKind.CODE, base, align_up(code_size, PAGE_SIZE))
        static_base = align_up(self.code.limit, PAGE_SIZE)
        self.static = Segment(
            SegmentKind.STATIC, static_base, align_up(static_size, PAGE_SIZE)
        )
        heap_base = align_up(self.static.limit, PAGE_SIZE)
        self.heap = Segment(SegmentKind.HEAP, heap_base, align_up(heap_size, PAGE_SIZE))
        stack_base = align_up(self.heap.limit + (1 << 30), PAGE_SIZE)
        self.stack = Segment(
            SegmentKind.STACK, stack_base, align_up(stack_size, PAGE_SIZE)
        )

    @property
    def segments(self) -> tuple:
        return (self.code, self.static, self.heap, self.stack)

    def segment_of(self, address: int) -> Optional[Segment]:
        """Return the segment containing ``address``, or ``None``."""
        for segment in self.segments:
            if segment.contains(address):
                return segment
        return None

    def check_access(self, address: int, length: int = 1) -> Segment:
        """Validate a data access and return its segment.

        Code-segment accesses are rejected: the profilers observe data
        traffic only, as in the paper (instruction fetches are not
        profiled).
        """
        segment = self.segment_of(address)
        if segment is None:
            raise MemoryError_(f"access to unmapped address {address:#x}")
        if not segment.contains(address, length):
            raise MemoryError_(
                f"access [{address:#x}, +{length}) straddles segment {segment.kind}"
            )
        if segment.kind is SegmentKind.CODE:
            raise MemoryError_(f"data access inside code segment at {address:#x}")
        return segment
