"""Crash-safe filesystem helpers.

A profile or checkpoint interrupted mid-write must never be left
truncated on disk: a later run would load garbage (or worse, half a
JSON document that happens to parse).  The pattern used everywhere is
the standard one -- write the full content to a temporary file *in the
same directory* (so the rename cannot cross filesystems) and
``os.replace`` it into place, which POSIX guarantees is atomic.
"""

# repro: durable-primitive  (this module IS the atomic-write
# implementation REPROLINT RL131/RL132 steer everything else toward)

from __future__ import annotations

import os
import tempfile


def atomic_write_text(path: str, content: str) -> None:
    """Write ``content`` to ``path`` atomically (temp file + rename).

    Either the old file survives untouched or the new content is fully
    in place; a crash between the two leaves at worst a stray
    ``.tmp`` file next to the target, never a truncated target.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    descriptor, temp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(descriptor, "w") as handle:
            handle.write(content)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise


def atomic_write_bytes(path: str, content: bytes) -> None:
    """Binary twin of :func:`atomic_write_text`, for BINCAP profiles."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    descriptor, temp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(descriptor, "wb") as handle:
            handle.write(content)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
