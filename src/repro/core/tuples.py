"""The object-relative access tuple.

Section 2.1 defines the translation of a raw ``(instruction-id, address)``
access into ``(instruction-id, group, object, offset)``, and Section 2.2
extends it with the time-stamp dimension:

    ``(instruction-id, group, object, offset, time-stamp)``

:class:`ObjectRelativeAccess` is that 5-tuple.  Two auxiliary fields --
access width and load/store kind -- ride along because the dependence
post-processor needs them; they are not part of the paper's tuple and are
never fed to the compressors.

Accesses that hit memory with no live tracked object (e.g. a read of a
freed block, or an untracked region) translate to the :data:`WILD_GROUP`
with the raw address preserved in ``offset`` so the stream stays
lossless.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.events import AccessKind

#: Group id for accesses that resolve to no live object.
WILD_GROUP = -1

#: Object serial used together with :data:`WILD_GROUP`.
WILD_OBJECT = -1


@dataclass(frozen=True)
class ObjectRelativeAccess:
    """One translated memory access.

    ``group``
        Identifier of the object's group (allocation site, optionally
        refined by type).
    ``object_serial``
        Serial number of the object within its group, in creation order.
    ``offset``
        Byte offset of the access from the object's start -- or the raw
        address itself when ``group == WILD_GROUP``.
    """

    __slots__ = (
        "instruction_id",
        "group",
        "object_serial",
        "offset",
        "time",
        "size",
        "kind",
    )

    instruction_id: int
    group: int
    object_serial: int
    offset: int
    time: int
    size: int
    kind: AccessKind

    @property
    def wild(self) -> bool:
        """True when the access resolved to no live object."""
        return self.group == WILD_GROUP

    def malformation(self) -> "str | None":
        """Why this tuple cannot be trusted by the compressors, or
        ``None`` when it is well-formed.

        Corrupted probe events (bit-flipped addresses, damaged sizes or
        instruction ids) surface here as out-of-domain fields; degraded
        profiling quarantines such tuples instead of letting them crash
        or poison a compressor downstream.
        """
        if not isinstance(self.instruction_id, int) or self.instruction_id < 0:
            return "bad-instruction"
        if not isinstance(self.size, int) or self.size < 0:
            return "bad-size"
        if not isinstance(self.kind, AccessKind):
            return "bad-kind"
        if not isinstance(self.offset, int):
            return "bad-offset"
        if not isinstance(self.time, int) or self.time < 0:
            return "bad-time"
        if not isinstance(self.group, int) or not isinstance(
            self.object_serial, int
        ):
            return "bad-object"
        return None

    def dimension(self, name: str) -> int:
        """Fetch one of the paper's dimensions by name.

        Used by horizontal decomposition; ``name`` is one of
        ``instruction``, ``group``, ``object``, ``offset``, ``time``.
        """
        try:
            return {
                "instruction": self.instruction_id,
                "group": self.group,
                "object": self.object_serial,
                "offset": self.offset,
                "time": self.time,
            }[name]
        except KeyError:
            raise ValueError(f"unknown dimension {name!r}") from None


#: The four dimensions of the paper's 4-tuple, in canonical order.  Time
#: is the fifth, added for vertical decomposition's re-indexing.
DIMENSIONS = ("instruction", "group", "object", "offset")
