"""BINCAP bench: binary vs JSON size and codec speed, eight workloads.

The acceptance bar for the binary profile format: across the WHOMP and
LEAP documents of the eight bundled workloads (the seven SPEC stand-ins
plus ``micro.array``), the binary encoding must be at least 3x smaller
than JSON in aggregate and must decode at least as fast in aggregate.
Per-kind numbers are printed so a regression in one codec is visible
even while the aggregate still clears the bar.
"""

import time

from conftest import once

from repro.core.profile_io import dumps_bytes, loads_bytes


def bundled_documents(context):
    """(workload, kind, profile) for the eight-workload WHOMP/LEAP set."""
    names = list(context.benchmarks) + ["micro.array"]
    rows = []
    for name in names:
        rows.append((name, "whomp", context.whomp(name)))
        rows.append((name, "leap", context.leap(name)))
    return rows


def _timed_decode(payloads, repeats=5):
    best = None
    for __ in range(repeats):
        start = time.perf_counter()
        for data in payloads:
            loads_bytes(data)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def test_binary_size_and_codec_speed(benchmark, context):
    rows = bundled_documents(context)

    def encode_all():
        return [
            (name, kind, dumps_bytes(profile, "json"),
             dumps_bytes(profile, "binary"))
            for name, kind, profile in rows
        ]

    encoded = once(benchmark, encode_all)

    json_bytes = sum(len(j) for __, __, j, __ in encoded)
    bin_bytes = sum(len(b) for __, __, __, b in encoded)
    json_time = _timed_decode([j for __, __, j, __ in encoded])
    bin_time = _timed_decode([b for __, __, __, b in encoded])

    print()
    by_kind = {}
    for name, kind, j, b in encoded:
        sizes = by_kind.setdefault(kind, [0, 0])
        sizes[0] += len(j)
        sizes[1] += len(b)
    for kind, (jsize, bsize) in sorted(by_kind.items()):
        print(f"{kind}: json {jsize} B, binary {bsize} B "
              f"({jsize / max(1, bsize):.2f}x smaller)")
    print(f"aggregate: json {json_bytes} B, binary {bin_bytes} B "
          f"({json_bytes / max(1, bin_bytes):.2f}x smaller)")
    print(f"decode: json {json_time * 1e3:.2f} ms, "
          f"binary {bin_time * 1e3:.2f} ms "
          f"({json_time / max(1e-9, bin_time):.2f}x faster)")

    # acceptance: >= 3x smaller AND no slower to decode, in aggregate
    assert bin_bytes * 3 <= json_bytes
    assert bin_time <= json_time
