"""Profile serialization.

Profiles are the artifact a feedback-directed compiler consumes in a
later build, so they must survive a round trip to disk.  The format is
versioned JSON: human-inspectable, diff-friendly, and adequate for the
profile sizes object-relative compression produces.

Supported payloads: :class:`~repro.profilers.whomp.WhompProfile`
(grammars stored as productions, re-expandable),
:class:`~repro.profilers.leap.LeapProfile` (LMAD records), and
:class:`~repro.baselines.dependence_lossless.DependenceProfile` (the
post-processed MDF table).
"""

from __future__ import annotations

import json
from typing import IO, Dict, List, Tuple

from repro.baselines.dependence_lossless import DependenceProfile
from repro.compression.lmad import LMAD, LMADProfileEntry, OverflowSummary
from repro.compression.sequitur import Ref, SequiturGrammar
from repro.core.events import AccessKind
from repro.profilers.leap import LeapProfile
from repro.profilers.whomp import WhompProfile

FORMAT_VERSION = 1


class ProfileFormatError(Exception):
    """Raised when a profile file cannot be decoded."""


# -- grammar (de)serialization ------------------------------------------------


def _grammar_to_json(grammar: SequiturGrammar) -> Dict[str, object]:
    productions = {}
    for rule_id, rhs in grammar.to_productions().items():
        encoded: List[object] = []
        for symbol in rhs:
            if isinstance(symbol, Ref):
                encoded.append(["R", symbol.rule_id])
            else:
                encoded.append(["T", symbol])
        productions[str(rule_id)] = encoded
    return {"start": grammar.start.id, "productions": productions}


def _expand_productions(data: Dict[str, object]) -> List[object]:
    """Expand serialized productions back into the terminal stream.

    Expansion is iterative (explicit frame stack): rule chains in a
    valid grammar can be arbitrarily deep, far past Python's recursion
    limit, and must still load.  A rule re-entered while one of its own
    expansions is in flight is a true cycle -- impossible in a grammar
    produced by Sequitur -- and raises :class:`ProfileFormatError`.
    """
    productions = data["productions"]
    start = str(data["start"])
    if start not in productions:
        raise ProfileFormatError(f"start rule {start!r} not in productions")
    out: List[object] = []
    # Each frame: [rule_id, rhs, next index].  ``active`` tracks the
    # rules currently on the stack for cycle detection.
    stack: List[List[object]] = [[start, productions[start], 0]]
    active = {start}
    while stack:
        frame = stack[-1]
        rule_id, rhs, index = frame
        if index >= len(rhs):
            stack.pop()
            active.discard(rule_id)
            continue
        frame[2] = index + 1
        tag, value = rhs[index]
        if tag == "T":
            out.append(value)
        elif tag == "R":
            child = str(value)
            if child in active:
                raise ProfileFormatError(
                    f"grammar cycle through rule {child!r}"
                )
            child_rhs = productions.get(child)
            if child_rhs is None:
                raise ProfileFormatError(f"undefined rule {child!r}")
            stack.append([child, child_rhs, 0])
            active.add(child)
        else:
            raise ProfileFormatError(f"bad symbol tag {tag!r}")
    return out


# -- WHOMP ----------------------------------------------------------------


def save_whomp(profile: WhompProfile, stream: IO[str]) -> None:
    document = {
        "format": "whomp",
        "version": FORMAT_VERSION,
        "access_count": profile.access_count,
        "grammars": {
            name: _grammar_to_json(grammar)
            for name, grammar in profile.grammars.items()
        },
        "base_addresses": [
            [group, serial, address]
            for (group, serial), address in sorted(profile.base_addresses.items())
        ],
        "lifetimes": [list(row) for row in profile.lifetimes],
        "group_labels": {str(k): v for k, v in profile.group_labels.items()},
    }
    json.dump(document, stream)


def load_whomp_streams(stream: IO[str]) -> Dict[str, object]:
    """Load a WHOMP profile as expanded dimension streams plus the
    auxiliary tables.

    The Sequitur grammar objects themselves are not reconstructed (the
    grammar is a compression artifact); consumers want the streams.
    Returns a dict with ``streams``, ``base_addresses``, ``lifetimes``,
    ``group_labels``, ``access_count``.
    """
    document = json.load(stream)
    if document.get("format") != "whomp":
        raise ProfileFormatError("not a WHOMP profile")
    if document.get("version") != FORMAT_VERSION:
        raise ProfileFormatError(f"unsupported version {document.get('version')}")
    streams = {
        name: _expand_productions(grammar_data)
        for name, grammar_data in document["grammars"].items()
    }
    base_addresses = {
        (group, serial): address
        for group, serial, address in document["base_addresses"]
    }
    return {
        "streams": streams,
        "base_addresses": base_addresses,
        "lifetimes": [tuple(row) for row in document["lifetimes"]],
        "group_labels": {int(k): v for k, v in document["group_labels"].items()},
        "access_count": document["access_count"],
    }


# -- LEAP --------------------------------------------------------------------


def save_leap(profile: LeapProfile, stream: IO[str]) -> None:
    entries = []
    for (instruction, group), entry in sorted(profile.entries.items()):
        overflow = entry.overflow
        entries.append(
            {
                "instruction": instruction,
                "group": group,
                "total": entry.total_symbols,
                "lmads": [
                    [list(l.start), list(l.stride), l.count] for l in entry.lmads
                ],
                "overflow": {
                    "count": overflow.count,
                    "min": list(overflow.minimum) if overflow.minimum else None,
                    "max": list(overflow.maximum) if overflow.maximum else None,
                    "granularity": (
                        list(overflow.granularity) if overflow.granularity else None
                    ),
                },
            }
        )
    document = {
        "format": "leap",
        "version": FORMAT_VERSION,
        "budget": profile.budget,
        "access_count": profile.access_count,
        "entries": entries,
        "kinds": {str(k): v.value for k, v in profile.kinds.items()},
        "exec_counts": {str(k): v for k, v in profile.exec_counts.items()},
        "group_labels": {str(k): v for k, v in profile.group_labels.items()},
        "lifetimes": [list(row) for row in profile.lifetimes],
    }
    json.dump(document, stream)


def load_leap(stream: IO[str]) -> LeapProfile:
    document = json.load(stream)
    if document.get("format") != "leap":
        raise ProfileFormatError("not a LEAP profile")
    if document.get("version") != FORMAT_VERSION:
        raise ProfileFormatError(f"unsupported version {document.get('version')}")
    entries: Dict[Tuple[int, int], LMADProfileEntry] = {}
    for record in document["entries"]:
        lmads = tuple(
            LMAD(tuple(start), tuple(stride), count)
            for start, stride, count in record["lmads"]
        )
        dims = lmads[0].dims if lmads else 3
        overflow = OverflowSummary(dims=dims)
        overflow.count = record["overflow"]["count"]
        if record["overflow"]["min"] is not None:
            overflow.minimum = tuple(record["overflow"]["min"])
            overflow.maximum = tuple(record["overflow"]["max"])
            overflow.granularity = tuple(record["overflow"]["granularity"])
        entries[(record["instruction"], record["group"])] = LMADProfileEntry(
            lmads=lmads,
            overflow=overflow,
            total_symbols=record["total"],
        )
    return LeapProfile(
        entries=entries,
        kinds={int(k): AccessKind(v) for k, v in document["kinds"].items()},
        exec_counts={int(k): v for k, v in document["exec_counts"].items()},
        group_labels={int(k): v for k, v in document["group_labels"].items()},
        access_count=document["access_count"],
        budget=document["budget"],
        lifetimes=[tuple(row) for row in document["lifetimes"]],
    )


# -- dependence tables -------------------------------------------------------


def save_dependence(profile: DependenceProfile, stream: IO[str]) -> None:
    document = {
        "format": "dependence",
        "version": FORMAT_VERSION,
        "conflicts": [
            [store, load, count]
            for (store, load), count in sorted(profile.conflicts.items())
        ],
        "load_counts": {str(k): v for k, v in profile.load_counts.items()},
        "store_counts": {str(k): v for k, v in profile.store_counts.items()},
    }
    json.dump(document, stream)


def load_dependence(stream: IO[str]) -> DependenceProfile:
    document = json.load(stream)
    if document.get("format") != "dependence":
        raise ProfileFormatError("not a dependence profile")
    return DependenceProfile(
        conflicts={
            (store, load): count for store, load, count in document["conflicts"]
        },
        load_counts={int(k): v for k, v in document["load_counts"].items()},
        store_counts={int(k): v for k, v in document["store_counts"].items()},
    )
