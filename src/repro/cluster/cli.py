"""``repro-cluster``: boot, inspect, rebalance, drain, and load-test.

Subcommands::

    repro-cluster serve --root DIR [--shards N] [--replicas 2] [...]
        Spawn N supervised shard processes and front them with the
        consistent-hash router (foreground; SIGTERM/Ctrl-C drains the
        shards and exits).

    repro-cluster status --url URL
        Pretty-print the router's /clusterz.

    repro-cluster rebalance --url URL
        Re-place every digest after membership changes; copy missing
        replicas.

    repro-cluster drain SHARD --url URL
        Move SHARD's data to its new placements, then stop it.

    repro-cluster bench --url URL [--requests N] [--concurrency C]
        [--jobs J] [--mix ingest-json=0.5,...] [--kill-shard-after S]
        Drive the mixed load harness; --kill-shard-after S SIGKILLs
        one live shard mid-run (the fault drill).  Exits 1 on any
        transport failure or 5xx.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import threading
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional

from repro.obs.events import EventLog


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cluster",
        description="Sharded PROFSTORE: consistent-hash router, "
        "replicated shards, load harness.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="boot a supervised cluster")
    serve.add_argument("--root", required=True, metavar="DIR")
    serve.add_argument("--shards", type=int, default=3, metavar="N")
    serve.add_argument("--replicas", type=int, default=2, metavar="R")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8350,
        help="router port (0 = ephemeral; the bound address is printed "
        "as 'listening host:port')",
    )
    serve.add_argument("--vnodes", type=int, default=64)
    serve.add_argument(
        "--probe-interval", type=float, default=1.0, metavar="SECS"
    )
    serve.add_argument(
        "--drain-deadline", type=float, default=3.0, metavar="SECS",
        help="per-shard graceful-shutdown deadline",
    )
    serve.add_argument(
        "--trace-out", metavar="PATH",
        help="mirror the router's structured events (JSONL) to PATH",
    )

    def add_url(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--url", required=True, metavar="URL",
            help="router base URL (http://host:port)",
        )

    status = sub.add_parser("status", help="show /clusterz")
    add_url(status)
    status.add_argument("--json", action="store_true", dest="as_json")

    rebalance = sub.add_parser("rebalance", help="re-place every digest")
    add_url(rebalance)

    drain = sub.add_parser("drain", help="move a shard's data away")
    drain.add_argument("shard", help="shard name, e.g. shard1")
    add_url(drain)

    bench = sub.add_parser("bench", help="run the load harness")
    add_url(bench)
    bench.add_argument("--requests", type=int, default=300)
    bench.add_argument("--concurrency", type=int, default=8)
    bench.add_argument(
        "--jobs", type=int, default=1,
        help="client processes (each runs requests/jobs ops)",
    )
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--mix", metavar="K=W,K=W",
        help="op-mix overrides, e.g. ingest-json=0.5,get=0.3",
    )
    bench.add_argument(
        "--kill-shard-after", type=float, metavar="SECS",
        help="fault drill: SIGKILL one live shard SECS into the run",
    )
    bench.add_argument("--json", action="store_true", dest="as_json")
    return parser


def _http_json(url: str, method: str = "GET", timeout: float = 30.0):
    request = urllib.request.Request(url, method=method)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(
                response.read().decode("utf-8")
            )
    except urllib.error.HTTPError as exc:
        detail = exc.read().decode("utf-8", errors="replace").strip()
        raise ValueError(f"router answered {exc.code}: {detail}") from None
    except urllib.error.URLError as exc:
        raise ValueError(f"router unreachable: {exc.reason}") from None


def _run_serve(args: argparse.Namespace) -> int:
    from repro.cluster.router import ClusterRouter
    from repro.cluster.supervisor import ShardSupervisor

    events = EventLog(path=args.trace_out)
    router = ClusterRouter(
        host=args.host,
        port=args.port,
        replicas=args.replicas,
        vnodes=args.vnodes,
        probe_interval=args.probe_interval,
        events=events,
    )
    supervisor = ShardSupervisor(
        args.root,
        shards=args.shards,
        host=args.host,
        events=events,
        drain_deadline=args.drain_deadline,
        on_address_change=router.attach_shard,
    )
    router.supervisor = supervisor
    host, port = router.address
    print(
        f"cluster router for {args.root} on {router.url} "
        f"({args.shards} shards, {args.replicas} replicas)",
        flush=True,
    )
    try:
        supervisor.start()
    except (OSError, RuntimeError) as exc:
        print(f"shard boot failed: {exc}", file=sys.stderr)
        supervisor.stop()
        router.stop()
        return 1
    for name, url in sorted(supervisor.addresses().items()):
        print(f"shard {name} at {url}", flush=True)
    print(f"listening {host}:{port}", flush=True)

    class _Terminated(Exception):
        pass

    def _on_sigterm(signum, frame):
        raise _Terminated()

    previous = signal.signal(signal.SIGTERM, _on_sigterm)
    try:
        router.serve_forever()
    except (KeyboardInterrupt, _Terminated):
        pass
    finally:
        signal.signal(signal.SIGTERM, previous)
        router.stop()
        supervisor.stop()
    return 0


def _run_status(args: argparse.Namespace) -> int:
    __, payload = _http_json(f"{args.url.rstrip('/')}/clusterz")
    if args.as_json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    ring = payload.get("ring", {})
    print(
        f"ring: {len(ring.get('shards', []))} shard(s), "
        f"{ring.get('replicas')} replica(s), "
        f"version {ring.get('version')}"
    )
    for name, row in sorted(payload.get("shards", {}).items()):
        state = "alive" if row.get("alive") else "DOWN"
        if row.get("draining"):
            state = "draining"
        share = ring.get("keyspace_share", {}).get(name)
        print(
            f"  {name:<8} {state:<8} {row.get('url') or '-':<28} "
            f"pid {row.get('pid') or '-':<8} "
            f"restarts {row.get('restarts', 0):<3} "
            f"runs {row.get('runs') if row.get('runs') is not None else '-':<5} "
            f"share {share if share is not None else '-'}"
        )
    replication = payload.get("replication", {})
    print(
        f"replication: {replication.get('read_repairs', 0)} read-repair(s), "
        f"lag {replication.get('lag_runs')} run(s)"
    )
    return 0


def _parse_mix(text: Optional[str]) -> Optional[Dict[str, float]]:
    if not text:
        return None
    mix: Dict[str, float] = {}
    for part in text.split(","):
        if not part:
            continue
        key, __, value = part.partition("=")
        try:
            mix[key.strip()] = float(value)
        except ValueError:
            raise ValueError(f"bad mix clause {part!r}") from None
    return mix


def _live_shard_pid(url: str) -> Optional[int]:
    """A (pid, any) of one alive shard, for the kill drill."""
    try:
        __, payload = _http_json(f"{url.rstrip('/')}/clusterz", timeout=5.0)
    except ValueError:
        return None
    for __name, row in sorted(payload.get("shards", {}).items()):
        if row.get("alive") and isinstance(row.get("pid"), int):
            return row["pid"]
    return None


def _kill_one_shard_later(url: str, delay: float) -> threading.Thread:
    def killer() -> None:
        time.sleep(delay)
        pid = _live_shard_pid(url)
        if pid is None:
            print("fault drill: no live shard pid found", file=sys.stderr)
            return
        try:
            os.kill(pid, signal.SIGKILL)
        except OSError as exc:
            print(f"fault drill: kill failed: {exc}", file=sys.stderr)
            return
        print(f"fault drill: SIGKILLed shard pid {pid}", flush=True)

    thread = threading.Thread(target=killer, daemon=True)
    thread.start()
    return thread


def _run_bench(args: argparse.Namespace) -> int:
    from repro.cluster.loadgen import run_load_parallel

    mix = _parse_mix(args.mix)
    killer: Optional[threading.Thread] = None
    if args.kill_shard_after is not None:
        killer = _kill_one_shard_later(args.url, args.kill_shard_after)
    report = run_load_parallel(
        args.url,
        requests=args.requests,
        concurrency=args.concurrency,
        jobs=args.jobs,
        seed=args.seed,
        mix=mix,
    )
    if killer is not None:
        killer.join(timeout=10.0)
    payload = report.to_json()
    if args.as_json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        latency = payload["latency"].get("*", {})
        print(
            f"{payload['requests']} requests in "
            f"{payload['seconds']:.2f}s = "
            f"{payload['throughput_rps']:.1f} req/s; "
            f"{payload['completed']} ok, "
            f"{payload['failures']} transport failure(s), "
            f"{payload['server_errors']} 5xx, "
            f"{payload['client_errors']} 4xx"
        )
        if latency:
            print(
                f"latency p50 {latency.get('p50_seconds', 0) * 1000:.1f}ms "
                f"p95 {latency.get('p95_seconds', 0) * 1000:.1f}ms "
                f"p99 {latency.get('p99_seconds', 0) * 1000:.1f}ms"
            )
        for kind, row in sorted(payload["by_kind"].items()):
            print(f"  {kind:<14} {row['count']:>6} ops, {row['errors']} error(s)")
    return 1 if (report.failures or report.server_errors) else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "serve":
            return _run_serve(args)
        if args.command == "status":
            return _run_status(args)
        if args.command == "rebalance":
            __, payload = _http_json(
                f"{args.url.rstrip('/')}/rebalance", method="POST",
                timeout=120.0,
            )
            print(
                f"rebalance: checked {payload.get('checked')}, "
                f"copied {payload.get('copied')}, "
                f"failed {payload.get('failed')}"
            )
            return 1 if payload.get("failed") else 0
        if args.command == "drain":
            __, payload = _http_json(
                f"{args.url.rstrip('/')}/drain?shard={args.shard}",
                method="POST", timeout=120.0,
            )
            print(
                f"drained {payload.get('shard')}: copied "
                f"{payload.get('copied')} digest(s), "
                f"stopped={payload.get('stopped')}"
            )
            return 1 if payload.get("error") else 0
        if args.command == "bench":
            return _run_bench(args)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
