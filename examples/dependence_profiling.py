"""Memory-dependence frequency profiling with LEAP (Section 4.2.1).

Collects a LEAP profile of the mcf stand-in, post-processes the LMADs
with the omega-test solver into the (store, load, frequency) list the
paper shows -- e.g. ``(st2, ld1, 10%)`` -- and checks the estimates
against the lossless ground-truth profiler. Run with::

    python examples/dependence_profiling.py
"""

from repro import LeapProfiler
from repro.baselines.dependence_lossless import LosslessDependenceProfiler
from repro.postprocess.dependence import analyze_dependences
from repro.workloads.registry import create


def main() -> None:
    workload = create("mcf", scale=0.5)
    process = workload.execute()
    trace = process.trace
    names = {i.instruction_id: n for n, i in process.instructions.items()}

    leap = LeapProfiler().profile(trace)
    estimated = analyze_dependences(leap)
    truth = LosslessDependenceProfiler().profile(trace)

    print("dependent (store, load) pairs -- LEAP estimate vs ground truth:\n")
    true_pairs = truth.dependent_pairs()
    estimated_pairs = estimated.dependent_pairs()
    print(f"{'store':<28} {'load':<30} {'LEAP':>7} {'truth':>7}")
    for pair in sorted(set(true_pairs) | set(estimated_pairs)):
        store_id, load_id = pair
        print(
            f"{names.get(store_id, store_id):<28} "
            f"{names.get(load_id, load_id):<30} "
            f"{estimated_pairs.get(pair, 0.0):>6.1%} "
            f"{true_pairs.get(pair, 0.0):>6.1%}"
        )

    within = sum(
        1
        for pair in set(true_pairs) | set(estimated_pairs)
        if abs(estimated_pairs.get(pair, 0.0) - true_pairs.get(pair, 0.0)) <= 0.10
    )
    total = len(set(true_pairs) | set(estimated_pairs))
    print(f"\npairs within 10% of truth: {within}/{total}")
    print(
        "\nA scheduler would speculate loads above stores whose pair"
        "\nfrequency is low, and keep the high-frequency pairs in order."
    )


if __name__ == "__main__":
    main()
