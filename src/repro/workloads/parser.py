"""197.parser stand-in: natural-language link parser.

parser is famous for its *custom allocation pool*: nearly all
per-sentence structures come from a private arena that is bulk-reset
between sentences.  Following the paper's policy (Section 3.1 footnote:
"We choose to treat custom alloc pools as single objects"), the arena is
one big heap object; word nodes are carved out of it at bump-pointer
offsets (one static store instruction per node field) and the pool
resets every sentence.

The carve-out and scan phases are long affine runs inside one object,
so LEAP captures a large fraction of *accesses*; but with more
sentences than the LMAD budget every hot instruction's capture is
truncated, so almost no instruction is *completely* captured -- the
inverted quality split the paper reports for parser (76% of accesses,
8% of instructions).
"""

from __future__ import annotations

from repro.core.events import AccessKind
from repro.runtime.process import Process
from repro.workloads.base import REGISTRY, Workload

WORD = 8
NODE_WORDS = 4  # word-id, left link, right link, cost


@REGISTRY.register
class ParserWorkload(Workload):
    name = "parser"
    description = "link parser: custom pool carving + cross-link chasing"

    #: footnote-2 parameterization: False treats the pool as a single
    #: object (the paper's default); True targets the custom carve and
    #: reset points with object probes instead.
    carve_pool = False

    def __init__(
        self,
        scale: float = 1.0,
        seed: int = 0,
        sentences: int = 36,
        words_per_sentence: int = 170,
        dict_words: int = 2048,
        crosslinks_per_word: float = 0.25,
    ) -> None:
        super().__init__(scale=scale, seed=seed)
        self.sentences = sentences
        self.words_per_sentence = words_per_sentence
        self.dict_words = dict_words
        self.crosslinks_per_word = crosslinks_per_word

    def run(self, process: Process) -> None:
        rng = self.rng()
        self.declare_cold_statics(process)
        process.declare_static(
            "dictionary", self.dict_words * WORD, type_name="dict_entry[]"
        )
        dictionary = process.static("dictionary").address
        pool_words = self.words_per_sentence * NODE_WORDS + 64
        pool = process.malloc(
            "parser.pool",
            pool_words * WORD,
            type_name="arena",
            track=not self.carve_pool,
        )

        ld_dict = process.instruction("lookup.load_dict", AccessKind.LOAD)
        st_field = [
            process.instruction(f"xalloc.store_field_{f}", AccessKind.STORE)
            for f in range(NODE_WORDS)
        ]
        ld_node = process.instruction("parse.load_node", AccessKind.LOAD)
        st_link = process.instruction("parse.store_link", AccessKind.STORE)
        ld_left = process.instruction("chase.load_left_link", AccessKind.LOAD)
        ld_right = process.instruction("chase.load_right_link", AccessKind.LOAD)
        st_cost = process.instruction("chase.store_cost", AccessKind.STORE)
        ld_cost = process.instruction("prune.load_cost", AccessKind.LOAD)

        self.run_startup(process, sites=1)
        words = self.words_per_sentence
        crosslinks = int(words * self.crosslinks_per_word)
        for __ in range(self.scaled(self.sentences)):
            bump = 0  # pool resets every sentence: offset reuse
            node_offsets = []
            # Carve: dictionary lookup + node field stores per word.
            for __ in range(words):
                process.load(
                    ld_dict, dictionary + rng.randrange(self.dict_words) * WORD
                )
                offset = bump
                bump += NODE_WORDS
                if self.carve_pool:
                    # the xalloc itself is the object-creation point
                    process.mark_object(
                        pool + offset * WORD,
                        NODE_WORDS * WORD,
                        "parser.xalloc",
                        type_name="word_node",
                    )
                for field, instr in enumerate(st_field):
                    process.store(instr, pool + (offset + field) * WORD)
                node_offsets.append(offset)
            # Linkage pass: regular left-to-right node scan.
            for offset in node_offsets:
                process.load(ld_node, pool + offset * WORD)
                process.store(st_link, pool + (offset + 1) * WORD)
            # Cross-link chasing between data-dependent word pairs,
            # with a fixed-period cost store.
            for pair in range(crosslinks):
                left = node_offsets[rng.randrange(words)]
                right = node_offsets[rng.randrange(words)]
                process.load(ld_left, pool + (left + 1) * WORD)
                process.load(ld_right, pool + (right + 2) * WORD)
                if pair % 3 == 0:
                    process.store(st_cost, pool + (left + 3) * WORD)
            # Pruning: strided cost sweep over this sentence's nodes.
            for offset in node_offsets:
                process.load(ld_cost, pool + (offset + 3) * WORD)
            if self.carve_pool:
                # sentence end = bulk pool reset: release every node
                for offset in node_offsets:
                    process.unmark_object(pool + offset * WORD)

        process.free(pool)



@REGISTRY.register
class CarvedParserWorkload(ParserWorkload):
    """The footnote-2 alternative: the custom pool's carve/release
    points fire the object probes, so every word node is a first-class
    object (one group, thousands of serials) instead of an offset
    inside one arena object."""

    name = "parser.carved"
    description = "link parser with custom-pool carve points instrumented"
    carve_pool = True
