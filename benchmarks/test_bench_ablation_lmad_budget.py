"""Ablation bench: the LMAD descriptor budget.

The paper fixes 30 LMADs per (instruction, group) pair as the
size/quality/runtime sweet spot (Section 4.1).  This ablation sweeps
the budget and checks the trade-off behaves as described: capture and
profile size grow monotonically with budget, while the returns past the
paper's 30 diminish.
"""

import pytest
from conftest import once

from repro.profilers.leap import LeapProfiler

BUDGETS = (5, 15, 30, 60, 120)


@pytest.mark.parametrize("budget", BUDGETS)
def test_budget_sweep(benchmark, context, budget):
    def profile_suite():
        rows = {}
        for name in context.benchmarks:
            trace = context.trace(name)
            profile = LeapProfiler(budget=budget).profile(trace)
            rows[name] = (
                profile.accesses_captured(),
                profile.size_bytes(),
            )
        return rows

    rows = once(benchmark, profile_suite)
    captured = sum(c for c, __ in rows.values()) / len(rows)
    size = sum(s for __, s in rows.values())
    print(f"\nbudget {budget:4d}: avg captured {captured:.1%}, "
          f"profile bytes {size}")
    assert 0.0 <= captured <= 1.0


def test_budget_tradeoff_shape(context):
    """Monotonicity + diminishing returns around the paper's 30."""
    trace = context.trace("gzip")
    captured = {}
    sizes = {}
    for budget in BUDGETS:
        profile = LeapProfiler(budget=budget).profile(trace)
        captured[budget] = profile.accesses_captured()
        sizes[budget] = profile.size_bytes()
    for small, large in zip(BUDGETS, BUDGETS[1:]):
        assert captured[small] <= captured[large] + 1e-9
        assert sizes[small] <= sizes[large]
    # diminishing returns: the 30 -> 120 gain is smaller than 5 -> 30
    gain_low = captured[30] - captured[5]
    gain_high = captured[120] - captured[30]
    assert gain_high <= gain_low + 0.05
