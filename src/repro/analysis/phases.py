"""Phase-cognizant profiling (the paper's future-work extension).

Section 6: "Another avenue to explore is to make use of recent results
on phase detection and prediction to profile references in a phase
cognizant manner."  This module implements that avenue on top of the
object-relative stream:

* the access stream is cut into fixed-length intervals;
* each interval gets a signature -- the normalized histogram of its
  instruction dimension (the object-relative analogue of basic-block
  vectors from the phase-tracking literature);
* intervals whose signatures are within a Manhattan-distance threshold
  join the same *phase* (leader clustering, online);
* a per-phase LEAP profile is collected, so optimizations can consult
  the profile of the phase they are specializing for.

The ablation bench shows the payoff: a phase-split LEAP profile captures
more accesses than a single whole-run profile when the program's phases
have conflicting access patterns, at a modest size cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.compression.lmad import DEFAULT_BUDGET
from repro.core.cdc import translate_trace
from repro.core.events import Trace
from repro.core.omc import ObjectManager
from repro.core.scc import VerticalLMADSCC
from repro.core.tuples import ObjectRelativeAccess
from repro.profilers.leap import LeapProfile, LeapProfiler

#: accesses per signature interval
DEFAULT_INTERVAL = 4096

#: Manhattan-distance threshold below which two interval signatures are
#: considered the same phase (signatures are L1-normalized, so the
#: distance ranges over [0, 2]).
DEFAULT_THRESHOLD = 0.35


Signature = Dict[int, float]


def _distance(a: Signature, b: Signature) -> float:
    keys = set(a) | set(b)
    return sum(abs(a.get(k, 0.0) - b.get(k, 0.0)) for k in keys)


@dataclass
class Phase:
    """One detected phase: a leader signature and its intervals."""

    phase_id: int
    leader: Signature
    intervals: List[int] = field(default_factory=list)

    @property
    def interval_count(self) -> int:
        return len(self.intervals)


class PhaseDetector:
    """Online leader-clustering phase detector over interval signatures."""

    def __init__(
        self,
        interval: int = DEFAULT_INTERVAL,
        threshold: float = DEFAULT_THRESHOLD,
    ) -> None:
        if interval < 1:
            raise ValueError("interval must be >= 1")
        self.interval = interval
        self.threshold = threshold
        self.phases: List[Phase] = []
        self._counts: Dict[int, int] = {}
        self._filled = 0
        self._interval_index = 0
        #: phase id assigned to each completed interval, in order
        self.assignments: List[int] = []

    def feed(self, access: ObjectRelativeAccess) -> Optional[int]:
        """Consume one access; returns a phase id when an interval
        completes, else None."""
        self._counts[access.instruction_id] = (
            self._counts.get(access.instruction_id, 0) + 1
        )
        self._filled += 1
        if self._filled < self.interval:
            return None
        return self._complete_interval()

    def flush(self) -> Optional[int]:
        """Classify a trailing partial interval, if any."""
        if not self._filled:
            return None
        return self._complete_interval()

    def _complete_interval(self) -> int:
        total = float(self._filled)
        signature = {k: v / total for k, v in self._counts.items()}
        phase = self._classify(signature)
        phase.intervals.append(self._interval_index)
        self.assignments.append(phase.phase_id)
        self._interval_index += 1
        self._counts = {}
        self._filled = 0
        return phase.phase_id

    def _classify(self, signature: Signature) -> Phase:
        best: Optional[Phase] = None
        best_distance = self.threshold
        for phase in self.phases:
            distance = _distance(signature, phase.leader)
            if distance <= best_distance:
                best = phase
                best_distance = distance
        if best is not None:
            return best
        phase = Phase(len(self.phases), signature)
        self.phases.append(phase)
        return phase


@dataclass
class PhasedLeapProfile:
    """Per-phase LEAP profiles plus the phase assignment sequence."""

    profiles: Dict[int, LeapProfile]
    phases: List[Phase]
    assignments: List[int]
    interval: int

    def phase_count(self) -> int:
        return len(self.phases)

    def accesses_captured(self) -> float:
        """Capture rate across all phases combined."""
        total = sum(p.access_count for p in self.profiles.values())
        if not total:
            return 1.0
        captured = sum(
            entry.captured_symbols
            for profile in self.profiles.values()
            for entry in profile.entries.values()
        )
        return captured / total

    def size_bytes(self) -> int:
        return sum(profile.size_bytes() for profile in self.profiles.values())


class PhasedLeapProfiler:
    """LEAP with phase-cognizant collection.

    Accesses are routed to a per-phase :class:`VerticalLMADSCC`, keyed by
    the phase of the interval they fall in.  Each phase thus gets its
    own descriptor budget, so a pattern change at a phase boundary no
    longer burns the whole-run budget.
    """

    def __init__(
        self,
        budget: int = DEFAULT_BUDGET,
        interval: int = DEFAULT_INTERVAL,
        threshold: float = DEFAULT_THRESHOLD,
    ) -> None:
        self.budget = budget
        self.interval = interval
        self.threshold = threshold

    def profile(self, trace: Trace) -> PhasedLeapProfile:
        omc = ObjectManager()
        detector = PhaseDetector(self.interval, self.threshold)
        sccs: Dict[int, VerticalLMADSCC] = {}
        counts: Dict[int, int] = {}
        # Buffer one interval of accesses, classify it, then feed the
        # phase's SCC: the phase of an interval is only known at its end.
        pending: List[ObjectRelativeAccess] = []

        def drain(phase_id: int) -> None:
            scc = sccs.get(phase_id)
            if scc is None:
                scc = VerticalLMADSCC(budget=self.budget)
                sccs[phase_id] = scc
            for access in pending:
                scc.consume(access)
            counts[phase_id] = counts.get(phase_id, 0) + len(pending)
            pending.clear()

        for access in translate_trace(trace, omc):
            pending.append(access)
            phase_id = detector.feed(access)
            if phase_id is not None:
                drain(phase_id)
        tail_phase = detector.flush()
        if tail_phase is not None:
            drain(tail_phase)

        group_labels = {g.group_id: g.label for g in omc.groups}
        profiles = {
            phase_id: LeapProfile(
                entries=scc.finish(),
                kinds=scc.kinds,
                exec_counts=scc.exec_counts,
                group_labels=group_labels,
                access_count=counts.get(phase_id, 0),
                budget=self.budget,
            )
            for phase_id, scc in sccs.items()
        }
        return PhasedLeapProfile(
            profiles=profiles,
            phases=detector.phases,
            assignments=detector.assignments,
            interval=self.interval,
        )


def compare_with_flat(
    trace: Trace,
    budget: int = DEFAULT_BUDGET,
    interval: int = DEFAULT_INTERVAL,
) -> Tuple[float, float]:
    """(flat capture rate, phased capture rate) for one trace -- the
    headline of the phase-cognizant ablation."""
    flat = LeapProfiler(budget=budget).profile(trace)
    phased = PhasedLeapProfiler(budget=budget, interval=interval).profile(trace)
    return flat.accesses_captured(), phased.accesses_captured()
