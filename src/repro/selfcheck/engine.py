"""Analysis orchestration, baselines, and the fixture self-test.

``analyze_paths`` is the whole pipeline: discover + parse the tree,
build the cross-module class model, run every checker, and return
sorted findings.  Baselines hold finding *fingerprints* (stable under
line churn), so ``repro-lint --baseline`` fails CI only on findings
that are genuinely new.

The fixture self-test is the analyzer's own regression harness: the
seeded-defect modules under ``fixtures/`` carry ``# repro:
expect(CODE)`` annotations on the exact defect lines, and
``fixture_selftest`` proves every expected defect is detected (zero
false negatives) and every registered code is exercised by at least
one fixture.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.selfcheck.classmodel import ClassIndex
from repro.selfcheck.determinism import (
    check_module_determinism,
    extract_event_schemas,
)
from repro.selfcheck.durability import check_module_durability
from repro.selfcheck.findings import CODES, Finding, FindingSink, sort_findings
from repro.selfcheck.forksafety import check_module_forksafety
from repro.selfcheck.loader import SelfCheckError, SourceModule, load_tree
from repro.selfcheck.races import check_module_races

BASELINE_VERSION = 1

#: default location of the seeded-defect fixture tree
FIXTURES_DIR = os.path.join(os.path.dirname(__file__), "fixtures")


def analyze_modules(modules: List[SourceModule]) -> List[Finding]:
    index = ClassIndex(modules)
    shared = index.shared_classes()
    schemas = extract_event_schemas(modules)
    findings: List[Finding] = []
    for module in modules:
        sink = FindingSink(
            suppressions=module.suppressions, path=module.path
        )
        check_module_races(module, index, shared, sink)
        check_module_forksafety(module, sink)
        check_module_durability(module, sink)
        check_module_determinism(module, schemas, sink)
        findings.extend(sink.findings)
    return sort_findings(findings)


def analyze_paths(
    paths: List[str], include_fixtures: bool = False
) -> List[Finding]:
    return analyze_modules(load_tree(paths, include_fixtures))


# ---------------------------------------------------------------- baseline


def load_baseline(path: str) -> Set[str]:
    """Fingerprints from a baseline file; empty set when absent."""
    if not os.path.exists(path):
        return set()
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise SelfCheckError(f"unreadable baseline {path!r}: {exc}") from exc
    if not isinstance(payload, dict) or "fingerprints" not in payload:
        raise SelfCheckError(
            f"baseline {path!r} is not a REPROLINT baseline file"
        )
    return set(payload["fingerprints"])


def baseline_payload(findings: List[Finding]) -> dict:
    return {
        "version": BASELINE_VERSION,
        "fingerprints": sorted({f.fingerprint for f in findings}),
    }


def write_baseline(path: str, findings: List[Finding]) -> None:
    text = json.dumps(baseline_payload(findings), indent=2) + "\n"
    from repro.core.fsutil import atomic_write_text

    atomic_write_text(path, text)


def split_by_baseline(
    findings: List[Finding], baseline: Set[str]
) -> Tuple[List[Finding], List[Finding]]:
    """``(new, known)`` relative to a baseline fingerprint set."""
    new: List[Finding] = []
    known: List[Finding] = []
    for finding in findings:
        (known if finding.fingerprint in baseline else new).append(finding)
    return new, known


# ------------------------------------------------------ fixture self-test


@dataclass
class SelfTestResult:
    ok: bool
    findings: List[Finding] = field(default_factory=list)
    #: (path, line, code) expected by a fixture but never reported
    missing: List[Tuple[str, int, str]] = field(default_factory=list)
    #: registered codes no fixture exercises
    uncovered: List[str] = field(default_factory=list)

    def render(self) -> str:
        lines: List[str] = []
        for path, line, code in self.missing:
            lines.append(
                f"{path}:{line}: expected {code} was NOT detected "
                f"(false negative)"
            )
        for code in self.uncovered:
            lines.append(
                f"code {code} has no seeded-defect fixture exercising it"
            )
        if self.ok:
            lines.append(
                f"fixtures: all {len(self.findings)} seeded defects "
                f"detected, all {len(CODES)} codes exercised"
            )
        return "\n".join(lines)


def fixture_selftest(fixtures_dir: str = FIXTURES_DIR) -> SelfTestResult:
    modules = [
        module
        for module in load_tree([fixtures_dir], include_fixtures=True)
        if module.is_fixture
    ]
    if not modules:
        raise SelfCheckError(
            f"no fixture modules found under {fixtures_dir!r}"
        )
    findings = analyze_modules(modules)
    actual: Dict[Tuple[str, int], Set[str]] = {}
    for finding in findings:
        actual.setdefault((finding.path, finding.line), set()).add(
            finding.code
        )
    missing: List[Tuple[str, int, str]] = []
    expected_codes: Set[str] = set()
    for module in modules:
        for line, codes in sorted(module.expects.items()):
            for code in sorted(codes):
                expected_codes.add(code)
                if code not in actual.get((module.path, line), set()):
                    missing.append((module.path, line, code))
    uncovered = sorted(set(CODES) - expected_codes)
    return SelfTestResult(
        ok=not missing and not uncovered,
        findings=findings,
        missing=missing,
        uncovered=uncovered,
    )
