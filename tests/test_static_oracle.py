"""Tests for the static-vs-profiled oracle."""

import os

import pytest

from repro.lang.analysis.oracle import (
    StaticOracle,
    canonical_lmads,
    validate_source,
)
from repro.lang.analysis.static_lmad import REGULAR_CLASSES, UNKNOWN_CLASS

EXAMPLES = os.path.join(
    os.path.dirname(__file__), os.pardir, "examples", "programs"
)


def example(name):
    with open(os.path.join(EXAMPLES, name)) as handle:
        return handle.read()


class TestCanonicalLmads:
    def test_same_points_same_descriptors(self):
        points = [(0, 8 * i) for i in range(16)]
        assert canonical_lmads(points) == canonical_lmads(list(points))

    def test_order_matters(self):
        forward = canonical_lmads([(0, 8 * i) for i in range(16)])
        backward = canonical_lmads([(0, 8 * i) for i in reversed(range(16))])
        assert forward != backward


class TestMatrixAgreement:
    @pytest.fixture(scope="class")
    def report(self):
        return validate_source(example("matrix.mir"))

    def test_every_instruction_proved_regular(self, report):
        assert all(
            v.classification in REGULAR_CLASSES for v in report.verdicts
        )

    def test_all_lmads_match(self, report):
        compared = [v for v in report.regular if v.lmads_match is not None]
        assert compared, "matrix must produce comparable instructions"
        assert all(v.lmads_match for v in compared)
        assert report.lmad_agreement == 1.0

    def test_exec_counts_match(self, report):
        assert report.exec_agreement == 1.0
        fill = next(
            v for v in report.verdicts if v.static_name == "main:15:store:[]"
        )
        assert fill.static_exec == fill.dynamic_exec == 1600

    def test_condition_loads_counted(self, report):
        inner = next(
            v for v in report.verdicts if v.static_name == "main:14:load:n"
        )
        # 40 outer iterations x 41 condition checks
        assert inner.static_exec == inner.dynamic_exec == 1640

    def test_dependences_agree(self, report):
        assert report.dependence_agreement == 1.0
        assert ("main:15:store:[]", "main:21:load:[]") in report.static_pairs
        assert not report.static_only_pairs
        assert not report.profiled_only_pairs

    def test_clean(self, report):
        assert report.clean

    def test_json_round_trips(self, report):
        import json

        payload = report.to_dict()
        assert json.loads(json.dumps(payload)) == json.loads(
            json.dumps(payload)
        )
        assert payload["clean"] is True


class TestLinkedListAgreement:
    @pytest.fixture(scope="class")
    def report(self):
        return validate_source(example("linked_list.mir"))

    def test_traversal_is_unknown(self, report):
        chased = [
            v for v in report.verdicts
            if v.static_name.startswith("total:")
        ]
        assert chased
        assert all(v.classification == UNKNOWN_CLASS for v in chased)

    def test_build_stores_match(self, report):
        builds = [
            v for v in report.verdicts
            if v.static_name.startswith("build:1")
            and v.verb == "store"
        ]
        assert builds
        assert all(v.classification in REGULAR_CLASSES for v in builds)
        assert all(v.lmads_match for v in builds)

    def test_no_false_claims(self, report):
        assert report.clean


class TestOracleInternals:
    def test_shared_program_instruction_identity(self):
        oracle = StaticOracle(example("matrix.mir"))
        report = oracle.run()
        # every static instruction resolved to a dynamic counterpart
        assert all(v.dynamic_name for v in report.verdicts)
        dynamic_names = set(oracle.interpreter.process.instructions)
        assert {v.dynamic_name for v in report.verdicts} <= dynamic_names

    def test_mismatch_detected_when_programs_differ(self):
        # Tamper: compare the static analysis of one program against
        # the profile of a shifted variant by editing the source between
        # the two runs.  Simplest honest check: a program whose static
        # model is wrong on purpose is not constructible through the
        # public API, so instead assert the comparison is not trivially
        # True -- the verdicts really looked at per-site streams.
        report = validate_source(example("matrix.mir"))
        assert all(
            v.site_matches for v in report.regular if v.lmads_match
        )
