"""Trace characterization: the statistics a profiling paper reports
about its inputs.

Used by the CLI (`repro-profile stats`) and the workload documentation:
instruction mix, memory footprint, object/group population, and the two
classic locality curves --

* **reuse distance** (LRU stack distance): for each access, the number
  of *distinct* cache lines touched since the previous access to the
  same line.  Computed exactly in O(N log N) with a Fenwick tree over
  access timestamps, the standard algorithm.
* **working set**: distinct lines touched per fixed-size window.

The reuse-distance histogram directly predicts fully-associative LRU
miss rates at every capacity, which makes it a good cross-check for the
cache simulator (a property test in the suite does exactly that).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.events import AccessKind, Trace


class _Fenwick:
    """Fenwick (binary indexed) tree over ``size`` slots."""

    def __init__(self, size: int) -> None:
        self._tree = [0] * (size + 1)

    def add(self, index: int, delta: int) -> None:
        index += 1
        while index < len(self._tree):
            self._tree[index] += delta
            index += index & -index

    def prefix_sum(self, index: int) -> int:
        """Sum of slots [0, index]."""
        index += 1
        total = 0
        while index > 0:
            total += self._tree[index]
            index -= index & -index
        return total

    def range_sum(self, low: int, high: int) -> int:
        """Sum of slots [low, high]."""
        if high < low:
            return 0
        total = self.prefix_sum(high)
        if low:
            total -= self.prefix_sum(low - 1)
        return total


#: distance value for first-ever touches of a line
COLD = -1


def reuse_distances(
    addresses: List[int], line_bytes: int = 64
) -> List[int]:
    """Exact LRU stack distance per access (at line granularity).

    Returns one entry per access: the number of distinct other lines
    referenced since this line's previous access, or :data:`COLD` for
    the first touch.
    """
    tree = _Fenwick(len(addresses) + 1)
    last_position: Dict[int, int] = {}
    out: List[int] = []
    for position, address in enumerate(addresses):
        line = address // line_bytes
        previous = last_position.get(line)
        if previous is None:
            out.append(COLD)
        else:
            # distinct lines whose last access falls in (previous, now)
            out.append(tree.range_sum(previous + 1, position - 1))
            tree.add(previous, -1)
        tree.add(position, 1)
        last_position[line] = position
    return out


def reuse_histogram(
    distances: List[int], buckets: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)
) -> Dict[str, int]:
    """Bucketed histogram (power-of-two bins plus cold and overflow)."""
    histogram: Dict[str, int] = {"cold": 0}
    edges = list(buckets)
    labels = [f"<{edge}" for edge in edges] + [f">={edges[-1]}"]
    for label in labels:
        histogram[label] = 0
    for distance in distances:
        if distance == COLD:
            histogram["cold"] += 1
            continue
        for edge, label in zip(edges, labels):
            if distance < edge:
                histogram[label] += 1
                break
        else:
            histogram[labels[-1]] += 1
    return histogram


def lru_miss_rate_from_distances(
    distances: List[int], capacity_lines: int
) -> float:
    """Miss rate of a fully-associative LRU cache of ``capacity_lines``,
    derived purely from the reuse-distance profile (the classic stack
    processing result: an access misses iff its distance >= capacity)."""
    if not distances:
        return 0.0
    misses = sum(
        1 for d in distances if d == COLD or d >= capacity_lines
    )
    return misses / len(distances)


def working_set_curve(
    addresses: List[int], window: int = 4096, line_bytes: int = 64
) -> List[int]:
    """Distinct lines touched in each consecutive window."""
    curve: List[int] = []
    for start in range(0, len(addresses), window):
        lines = {a // line_bytes for a in addresses[start : start + window]}
        curve.append(len(lines))
    return curve


@dataclass
class TraceStatistics:
    """Summary of one trace."""

    accesses: int
    loads: int
    stores: int
    static_instructions: int
    footprint_bytes: int
    objects_allocated: int
    groups: int
    peak_live_objects: int
    reuse: Dict[str, int] = field(default_factory=dict)

    @property
    def load_fraction(self) -> float:
        return self.loads / self.accesses if self.accesses else 0.0


def characterize(
    trace: Trace, line_bytes: int = 64, with_reuse: bool = True
) -> TraceStatistics:
    """Compute the full statistics block for a trace."""
    from repro.core.events import AllocEvent, FreeEvent

    loads = stores = 0
    instructions = set()
    lines = set()
    addresses: List[int] = []
    sites = set()
    allocated = 0
    live = 0
    peak_live = 0
    for event in trace:
        if isinstance(event, AllocEvent):
            allocated += 1
            live += 1
            peak_live = max(peak_live, live)
            sites.add(event.site)
        elif isinstance(event, FreeEvent):
            live -= 1
        else:
            if event.kind is AccessKind.LOAD:
                loads += 1
            else:
                stores += 1
            instructions.add(event.instruction_id)
            lines.add(event.address // line_bytes)
            addresses.append(event.address)
    reuse: Dict[str, int] = {}
    if with_reuse and addresses:
        reuse = reuse_histogram(reuse_distances(addresses, line_bytes))
    return TraceStatistics(
        accesses=loads + stores,
        loads=loads,
        stores=stores,
        static_instructions=len(instructions),
        footprint_bytes=len(lines) * line_bytes,
        objects_allocated=allocated,
        groups=len(sites),
        peak_live_objects=peak_live,
        reuse=reuse,
    )


def format_statistics(stats: TraceStatistics) -> str:
    """Human-readable statistics block."""
    lines = [
        f"accesses:            {stats.accesses} "
        f"({stats.load_fraction:.0%} loads)",
        f"static instructions: {stats.static_instructions}",
        f"footprint:           {stats.footprint_bytes} bytes",
        f"objects:             {stats.objects_allocated} across "
        f"{stats.groups} groups (peak live {stats.peak_live_objects})",
    ]
    if stats.reuse:
        lines.append("reuse distance (lines):")
        for label, count in stats.reuse.items():
            if count:
                lines.append(f"  {label:>6}: {count}")
    return "\n".join(lines)
