"""The mini-IR linter: CFG + dataflow passes -> diagnostics.

Checks (see :mod:`repro.lang.analysis.diagnostics` for the code table):

====== ==========================================================
MIR101 read of a variable that may be uninitialized on some path
MIR102 load/store through a pointer after ``delete``
MIR103 ``delete`` of an already-freed allocation
MIR104 allocation that is never freed and never escapes
MIR105 constant array index provably out of bounds
MIR106 store to a local whose value is never read (dead store)
MIR107 statements no execution can reach
MIR108 function with a return type that can fall off the end
====== ==========================================================

The heap checks run a per-function *allocation-site* dataflow: each
``new`` site is tracked through local pointer variables as live / freed
/ maybe-freed; pointers stored to memory, passed to calls, or returned
are *escaped* and exempt from leak reporting (the analysis is
intraprocedural and must not guess at callees).
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.lang import ast
from repro.lang.analysis.cfg import CFG, CFGNode, build_cfg
from repro.lang.analysis.dataflow import (
    UNINIT,
    ArrayRef,
    DataflowAnalysis,
    Interval,
    Liveness,
    ReachingDefinitions,
    ValueAnalysis,
    declared_locals,
    node_local_def,
    node_reads,
    solve,
)
from repro.lang.analysis.diagnostics import (
    Diagnostic,
    DiagnosticSink,
    suppressed_lines,
)
from repro.lang.parser import parse

# --------------------------------------------------------------------------
# expression walking helpers
# --------------------------------------------------------------------------


def node_top_exprs(node: CFGNode) -> List[ast.Expr]:
    """The expressions a CFG node evaluates, in evaluation order."""
    element = node.element
    if node.is_condition:
        return [element]  # type: ignore[list-item]
    if isinstance(element, ast.VarDecl):
        return [element.initializer] if element.initializer is not None else []
    if isinstance(element, ast.Assign):
        exprs = [element.value]
        if not isinstance(element.target, ast.VarRef):
            exprs.append(element.target)
        return exprs
    if isinstance(element, ast.ExprStmt):
        return [element.expr]
    if isinstance(element, ast.Delete):
        return [element.pointer]
    if isinstance(element, ast.Return):
        return [element.value] if element.value is not None else []
    return []


def iter_exprs(expr: Optional[ast.Expr]) -> Iterator[ast.Expr]:
    """Yield ``expr`` and every sub-expression."""
    if expr is None:
        return
    yield expr
    if isinstance(expr, ast.Unary):
        yield from iter_exprs(expr.operand)
    elif isinstance(expr, ast.Binary):
        yield from iter_exprs(expr.left)
        yield from iter_exprs(expr.right)
    elif isinstance(expr, ast.Call):
        for argument in expr.args:
            yield from iter_exprs(argument)
    elif isinstance(expr, ast.New):
        yield from iter_exprs(expr.count)
    elif isinstance(expr, ast.FieldAccess):
        yield from iter_exprs(expr.base)
    elif isinstance(expr, ast.Index):
        yield from iter_exprs(expr.base)
        yield from iter_exprs(expr.index)
    elif isinstance(expr, ast.AddressOf):
        yield from iter_exprs(expr.target)


# --------------------------------------------------------------------------
# allocation-site heap analysis (MIR102/103/104)
# --------------------------------------------------------------------------

LIVE = "live"
FREED = "freed"
MAYBE = "maybe-freed"

Site = Tuple[int, int]  # (line, column) of the ``new``


def _join_status(a: str, b: str) -> str:
    return a if a == b else MAYBE


class HeapAnalysis(DataflowAnalysis):
    """Track ``new`` sites through local pointers.

    State: ``{"env": {var: frozenset(sites)}, "allocs": {site: status},
    "escaped": frozenset(sites)}``.
    """

    direction = "forward"

    def __init__(self, function: ast.FunctionDecl) -> None:
        self.function = function
        self.locals = declared_locals(function)
        #: site -> human label ("new int[1600]"), filled during transfer
        self.site_labels: Dict[Site, str] = {}

    def boundary(self, cfg: CFG) -> object:
        return {"env": {}, "allocs": {}, "escaped": frozenset()}

    def initial(self) -> object:
        return {}

    def join(self, a: object, b: object) -> object:
        if not a:
            return b
        if not b:
            return a
        env: Dict[str, FrozenSet[Site]] = dict(a["env"])  # type: ignore[index]
        for name, sites in b["env"].items():  # type: ignore[index]
            env[name] = env.get(name, frozenset()) | sites
        allocs: Dict[Site, str] = dict(a["allocs"])  # type: ignore[index]
        for site, status in b["allocs"].items():  # type: ignore[index]
            allocs[site] = (
                _join_status(allocs[site], status) if site in allocs else status
            )
        escaped = a["escaped"] | b["escaped"]  # type: ignore[index]
        return {"env": env, "allocs": allocs, "escaped": escaped}

    def transfer(self, node: CFGNode, state: object) -> object:
        return self.apply(node, state, report=None)

    # -- the shared transfer/check walk ---------------------------------

    def apply(
        self,
        node: CFGNode,
        state: object,
        report: Optional[Callable[[str, int, int, str], None]],
    ) -> object:
        env: Dict[str, FrozenSet[Site]] = dict(state["env"])  # type: ignore[index]
        allocs: Dict[Site, str] = dict(state["allocs"])  # type: ignore[index]
        escaped: FrozenSet[Site] = state["escaped"]  # type: ignore[index]

        def sources(expr: Optional[ast.Expr]) -> FrozenSet[Site]:
            if expr is None:
                return frozenset()
            if isinstance(expr, ast.VarRef):
                return env.get(expr.name, frozenset())
            if isinstance(expr, ast.New):
                return frozenset([(expr.line, expr.column)])
            if isinstance(expr, ast.Binary):
                return sources(expr.left) | sources(expr.right)
            if isinstance(expr, ast.Unary):
                return sources(expr.operand)
            return frozenset()

        def describe(site: Site) -> str:
            label = self.site_labels.get(site, "new")
            return f"allocation `{label}` from line {site[0]}"

        def check_deref(expr: ast.Expr, base: ast.Expr) -> None:
            if report is None:
                return
            for site in sources(base):
                status = allocs.get(site)
                if status == FREED:
                    report(
                        "MIR102",
                        expr.line,
                        expr.column,
                        f"use of {describe(site)} after delete",
                    )
                elif status == MAYBE:
                    report(
                        "MIR102",
                        expr.line,
                        expr.column,
                        f"use of {describe(site)}, deleted on some path",
                    )

        def walk(expr: Optional[ast.Expr]) -> None:
            """Register allocations, escape call arguments, and (in the
            check pass) flag derefs of freed sites."""
            nonlocal escaped
            for sub in iter_exprs(expr):
                if isinstance(sub, ast.New):
                    site = (sub.line, sub.column)
                    allocs[site] = LIVE
                    label = f"new {sub.type_expr}"
                    if sub.count is not None:
                        label = f"new {sub.type_expr}[...]"
                    self.site_labels[site] = label
                elif isinstance(sub, ast.Call):
                    for argument in sub.args:
                        escaped = escaped | sources(argument)
                elif isinstance(sub, ast.FieldAccess) and sub.through_pointer:
                    check_deref(sub, sub.base)
                elif isinstance(sub, ast.Index):
                    check_deref(sub, sub.base)

        element = node.element
        if node.is_condition:
            walk(element)  # type: ignore[arg-type]
            return {"env": env, "allocs": allocs, "escaped": escaped}

        if isinstance(element, ast.VarDecl):
            walk(element.initializer)
            if element.name in self.locals:
                env[element.name] = sources(element.initializer)
        elif isinstance(element, ast.Assign):
            walk(element.value)
            if isinstance(element.target, ast.VarRef):
                if element.target.name in self.locals:
                    env[element.target.name] = sources(element.value)
                else:  # store to a global scalar: the pointer escapes
                    escaped = escaped | sources(element.value)
            else:
                walk(element.target)
                escaped = escaped | sources(element.value)
        elif isinstance(element, ast.ExprStmt):
            walk(element.expr)
        elif isinstance(element, ast.Delete):
            walk(element.pointer)
            pointed = sources(element.pointer)
            if report is not None:
                for site in pointed:
                    status = allocs.get(site)
                    if status == FREED:
                        report(
                            "MIR103",
                            element.line,
                            element.column,
                            f"double delete of {describe(site)}",
                        )
                    elif status == MAYBE:
                        report(
                            "MIR103",
                            element.line,
                            element.column,
                            f"delete of {describe(site)},"
                            " already deleted on some path",
                        )
            if len(pointed) == 1:
                allocs[next(iter(pointed))] = FREED
            else:
                for site in pointed:
                    if allocs.get(site) == LIVE:
                        allocs[site] = MAYBE
        elif isinstance(element, ast.Return):
            walk(element.value)
            escaped = escaped | sources(element.value)

        return {"env": env, "allocs": allocs, "escaped": escaped}


# --------------------------------------------------------------------------
# the linter
# --------------------------------------------------------------------------


class Linter:
    """Run every check over one program."""

    def __init__(self, program: ast.Program, source: str = "") -> None:
        self.program = program
        self.sink = DiagnosticSink(suppressed_lines(source))
        self.cfgs: Dict[str, CFG] = {}

    def run(self) -> List[Diagnostic]:
        for function in self.program.functions:
            self._lint_function(function)
        return self.sink.sorted()

    # -- per-function orchestration --------------------------------------

    def _lint_function(self, function: ast.FunctionDecl) -> None:
        cfg = build_cfg(function)
        self.cfgs[function.name] = cfg
        reachable = cfg.reachable()

        self._check_unreachable(function, cfg, reachable)
        self._check_missing_return(function, cfg)
        self._check_uninitialized(function, cfg, reachable)
        self._check_dead_stores(function, cfg, reachable)
        self._check_bounds(function, cfg, reachable)
        self._check_heap(function, cfg, reachable)

    def _report(
        self, function: ast.FunctionDecl
    ) -> Callable[[str, int, int, str], None]:
        def report(code: str, line: int, column: int, message: str) -> None:
            self.sink.report(code, line, column, message, function.name)

        return report

    # -- MIR107 ----------------------------------------------------------

    def _check_unreachable(
        self, function: ast.FunctionDecl, cfg: CFG, reachable: set
    ) -> None:
        report = self._report(function)
        dead_blocks = {
            block.bid
            for block in cfg.blocks
            if block.bid not in reachable and block.nodes
        }
        for bid in sorted(dead_blocks):
            block = cfg.block(bid)
            # Report only region heads: a dead block all of whose
            # predecessors are also dead is a continuation, not a new
            # finding.
            if any(pred in dead_blocks for pred in block.preds):
                continue
            node = block.nodes[0]
            report(
                "MIR107",
                node.line,
                node.column,
                "unreachable code",
            )

    # -- MIR108 ----------------------------------------------------------

    def _check_missing_return(
        self, function: ast.FunctionDecl, cfg: CFG
    ) -> None:
        if function.return_type is None:
            return
        if cfg.falls_through():
            self._report(function)(
                "MIR108",
                function.line,
                function.column,
                f"function `{function.name}` can reach the end of its body"
                " without returning a value",
            )

    # -- MIR101 ----------------------------------------------------------

    def _check_uninitialized(
        self, function: ast.FunctionDecl, cfg: CFG, reachable: set
    ) -> None:
        analysis = ReachingDefinitions(function)
        solution = solve(cfg, analysis)
        report = self._report(function)
        for bid in sorted(reachable):
            if bid not in solution.entry_state:
                continue
            for node, before, _after in solution.node_states(bid):
                for ref in node_reads(node):
                    if ref.name not in analysis.locals:
                        continue
                    defs = before.get(ref.name, frozenset())
                    if UNINIT in defs:
                        qualifier = (
                            "may be" if len(defs) > 1 else "is"
                        )
                        report(
                            "MIR101",
                            ref.line,
                            ref.column,
                            f"variable `{ref.name}` {qualifier} used"
                            " before initialization",
                        )

    # -- MIR106 ----------------------------------------------------------

    def _check_dead_stores(
        self, function: ast.FunctionDecl, cfg: CFG, reachable: set
    ) -> None:
        analysis = Liveness(function)
        solution = solve(cfg, analysis)
        report = self._report(function)
        for bid in sorted(reachable):
            if bid not in solution.entry_state:
                continue
            for node, _before, after in solution.node_states(bid):
                element = node.element
                if node.is_condition or not isinstance(element, ast.Assign):
                    continue
                name = node_local_def(node)
                if name is None or name not in analysis.locals:
                    continue
                if name in after:
                    continue
                # Keep stores whose right-hand side has effects the
                # program may rely on (calls, allocations).
                if any(
                    isinstance(sub, (ast.Call, ast.New))
                    for sub in iter_exprs(element.value)
                ):
                    continue
                report(
                    "MIR106",
                    element.line,
                    element.column,
                    f"value stored to `{name}` is never read",
                )

    # -- MIR105 ----------------------------------------------------------

    def _check_bounds(
        self, function: ast.FunctionDecl, cfg: CFG, reachable: set
    ) -> None:
        analysis = ValueAnalysis(function, self.program)
        solution = solve(cfg, analysis)
        report = self._report(function)
        for bid in sorted(reachable):
            if bid not in solution.entry_state:
                continue
            for node, before, _after in solution.node_states(bid):
                for top in node_top_exprs(node):
                    for sub in iter_exprs(top):
                        if not isinstance(sub, ast.Index):
                            continue
                        base = analysis.eval(sub.base, before)
                        index = analysis.eval(sub.index, before)
                        if not (
                            isinstance(base, ArrayRef)
                            and base.length is not None
                            and isinstance(index, Interval)
                            and index.is_const
                        ):
                            continue
                        value = index.lo
                        if value < 0 or value >= base.length:
                            report(
                                "MIR105",
                                sub.line,
                                sub.column,
                                f"index {value} is out of bounds for an"
                                f" array of {base.length} elements",
                            )

    # -- MIR102 / MIR103 / MIR104 ----------------------------------------

    def _check_heap(
        self, function: ast.FunctionDecl, cfg: CFG, reachable: set
    ) -> None:
        analysis = HeapAnalysis(function)
        solution = solve(cfg, analysis)
        report = self._report(function)
        for bid in sorted(reachable):
            if bid not in solution.entry_state:
                continue
            state = solution.entry_state[bid]
            for node in cfg.block(bid).nodes:
                state = analysis.apply(node, state, report)
        exit_state = solution.entry_state.get(cfg.exit.bid)
        if exit_state is None:
            return
        escaped = exit_state["escaped"]
        for site, status in sorted(exit_state["allocs"].items()):
            if status != LIVE or site in escaped:
                continue
            label = analysis.site_labels.get(site, "new")
            report(
                "MIR104",
                site[0],
                site[1],
                f"allocation `{label}` is never freed",
            )


# --------------------------------------------------------------------------
# entry points
# --------------------------------------------------------------------------


def lint_program(program: ast.Program, source: str = "") -> List[Diagnostic]:
    return Linter(program, source).run()


def lint_source(source: str) -> List[Diagnostic]:
    """Parse ``source`` and lint it (parse errors propagate as
    :class:`~repro.lang.lexer.LangError`)."""
    return lint_program(parse(source), source)
