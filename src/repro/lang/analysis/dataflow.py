"""Generic forward/backward dataflow over mini-IR CFGs.

The framework is the classic iterative worklist solver: an analysis
supplies a lattice (``initial`` / ``join`` / optional ``widen``), a
boundary state, and a per-node transfer function; :func:`solve` iterates
to a fixpoint and exposes states at *execution-oriented* program points
(the state immediately before / after each node executes), for forward
and backward analyses alike.

Three concrete analyses ship with the framework:

* :class:`ReachingDefinitions` -- which definitions of each local reach
  a point (drives the possibly-uninitialized-use check);
* :class:`Liveness` -- backward live-variable analysis (drives the
  dead-store check);
* :class:`ValueAnalysis` -- interval/constant propagation over locals,
  including array extents from ``new T[k]`` and global declarations
  (drives the constant out-of-bounds index check and the loop-bound
  reasoning of the static LMAD inference).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.lang import ast
from repro.lang.analysis.cfg import CFG, CFGNode

# --------------------------------------------------------------------------
# framework
# --------------------------------------------------------------------------


class DataflowAnalysis:
    """Base class: subclass and override the lattice + transfer."""

    #: "forward" or "backward"
    direction = "forward"

    def boundary(self, cfg: CFG) -> object:
        """State at the entry (forward) / exit (backward) of the CFG."""
        raise NotImplementedError

    def initial(self) -> object:
        """The identity of ``join`` (state of an unvisited path)."""
        raise NotImplementedError

    def join(self, a: object, b: object) -> object:
        raise NotImplementedError

    def transfer(self, node: CFGNode, state: object) -> object:
        """State after ``node`` executes, given the state before it.

        Backward analyses receive the state *after* execution and return
        the state *before* it (the transfer runs against the arrow of
        execution).
        """
        raise NotImplementedError

    def widen(self, old: object, new: object, visits: int) -> object:
        """Accelerate convergence; default is plain replacement."""
        return new


@dataclass
class Solution:
    """Fixpoint states in execution orientation.

    ``entry_state[bid]`` / ``exit_state[bid]`` are the states at block
    entry and block exit *in execution order*, whatever the analysis
    direction was.
    """

    cfg: CFG
    analysis: DataflowAnalysis
    entry_state: Dict[int, object]
    exit_state: Dict[int, object]

    def node_states(
        self, bid: int
    ) -> List[Tuple[CFGNode, object, object]]:
        """Per-node ``(node, state_before, state_after)`` in execution
        order, for the nodes of block ``bid``."""
        block = self.cfg.block(bid)
        out: List[Tuple[CFGNode, object, object]] = []
        if self.analysis.direction == "forward":
            state = self.entry_state[bid]
            for node in block.nodes:
                after = self.analysis.transfer(node, state)
                out.append((node, state, after))
                state = after
        else:
            state = self.exit_state[bid]
            backwards: List[Tuple[CFGNode, object, object]] = []
            for node in reversed(block.nodes):
                before = self.analysis.transfer(node, state)
                backwards.append((node, before, state))
                state = before
            out = list(reversed(backwards))
        return out


def solve(cfg: CFG, analysis: DataflowAnalysis) -> Solution:
    """Iterate ``analysis`` over ``cfg`` to a fixpoint."""
    forward = analysis.direction == "forward"
    reachable = cfg.reachable()
    order = [bid for bid in cfg.rpo() if bid in reachable]
    if not forward:
        order = list(reversed(order))

    boundary_bid = cfg.entry.bid if forward else cfg.exit.bid
    in_state: Dict[int, object] = {}  # direction-oriented input
    out_state: Dict[int, object] = {}  # direction-oriented output
    visits: Dict[int, int] = {}

    def edges_in(bid: int) -> Iterable[int]:
        block = cfg.block(bid)
        return block.preds if forward else block.succs

    def block_transfer(bid: int, state: object) -> object:
        nodes = cfg.block(bid).nodes
        for node in nodes if forward else reversed(nodes):
            state = analysis.transfer(node, state)
        return state

    worklist = list(order)
    in_worklist: Set[int] = set(worklist)
    while worklist:
        bid = worklist.pop(0)
        in_worklist.discard(bid)
        if bid == boundary_bid:
            incoming = analysis.boundary(cfg)
        else:
            incoming = analysis.initial()
            for source in edges_in(bid):
                if source in out_state:
                    incoming = analysis.join(incoming, out_state[source])
        visits[bid] = visits.get(bid, 0) + 1
        if bid in in_state:
            incoming = analysis.widen(in_state[bid], incoming, visits[bid])
        if bid in in_state and incoming == in_state[bid] and bid in out_state:
            continue
        in_state[bid] = incoming
        result = block_transfer(bid, incoming)
        if bid not in out_state or result != out_state[bid]:
            out_state[bid] = result
            block = cfg.block(bid)
            targets = block.succs if forward else block.preds
            for target in targets:
                if target in reachable and target not in in_worklist:
                    worklist.append(target)
                    in_worklist.add(target)
        else:
            out_state[bid] = result

    if forward:
        entry, exit_ = in_state, out_state
    else:
        entry, exit_ = out_state, in_state
    return Solution(cfg, analysis, entry, exit_)


# --------------------------------------------------------------------------
# expression use/def helpers (shared by the analyses and the linter)
# --------------------------------------------------------------------------


def expr_reads(expr: Optional[ast.Expr]) -> List[ast.VarRef]:
    """Every ``VarRef`` evaluated for its value inside ``expr``, in
    evaluation order (assignment targets are handled separately)."""
    out: List[ast.VarRef] = []
    _collect_reads(expr, out)
    return out


def _collect_reads(expr: Optional[ast.Expr], out: List[ast.VarRef]) -> None:
    if expr is None:
        return
    if isinstance(expr, ast.VarRef):
        out.append(expr)
    elif isinstance(expr, ast.Unary):
        _collect_reads(expr.operand, out)
    elif isinstance(expr, ast.Binary):
        _collect_reads(expr.left, out)
        _collect_reads(expr.right, out)
    elif isinstance(expr, ast.Call):
        for argument in expr.args:
            _collect_reads(argument, out)
    elif isinstance(expr, ast.New):
        _collect_reads(expr.count, out)
    elif isinstance(expr, ast.FieldAccess):
        _collect_reads(expr.base, out)
    elif isinstance(expr, ast.Index):
        _collect_reads(expr.base, out)
        _collect_reads(expr.index, out)
    elif isinstance(expr, ast.AddressOf):
        # &x names a location; the base expression of a field/index
        # chain is still evaluated.
        if not isinstance(expr.target, ast.VarRef):
            _collect_reads(expr.target, out)


def node_reads(node: CFGNode) -> List[ast.VarRef]:
    """Variable reads performed by one CFG node, in evaluation order."""
    element = node.element
    if node.is_condition:
        return expr_reads(element)  # type: ignore[arg-type]
    if isinstance(element, ast.VarDecl):
        return expr_reads(element.initializer)
    if isinstance(element, ast.Assign):
        # The interpreter evaluates the value first, then the lvalue.
        reads = expr_reads(element.value)
        if not isinstance(element.target, ast.VarRef):
            reads.extend(expr_reads(element.target))
        return reads
    if isinstance(element, ast.ExprStmt):
        return expr_reads(element.expr)
    if isinstance(element, ast.Delete):
        return expr_reads(element.pointer)
    if isinstance(element, ast.Return):
        return expr_reads(element.value)
    return []


def node_local_def(node: CFGNode) -> Optional[str]:
    """The local variable this node defines, if any."""
    element = node.element
    if node.is_condition:
        return None
    if isinstance(element, ast.VarDecl):
        return element.name
    if isinstance(element, ast.Assign) and isinstance(element.target, ast.VarRef):
        return element.target.name
    return None


def declared_locals(function: ast.FunctionDecl) -> Set[str]:
    """Every name declared as a parameter or ``var`` in ``function``."""
    names = {param.name for param in function.params}

    def walk(body: Tuple[ast.Stmt, ...]) -> None:
        for statement in body:
            if isinstance(statement, ast.VarDecl):
                names.add(statement.name)
            elif isinstance(statement, ast.If):
                walk(statement.then_body)
                walk(statement.else_body)
            elif isinstance(statement, ast.While):
                walk(statement.body)
                if statement.step is not None:
                    walk((statement.step,))
            elif hasattr(statement, "init") and hasattr(statement, "loop"):
                walk((statement.init, statement.loop))

    walk(function.body)
    return names


# --------------------------------------------------------------------------
# reaching definitions
# --------------------------------------------------------------------------

#: pseudo-definition marking "never assigned on this path"
UNINIT = ("uninit",)


class ReachingDefinitions(DataflowAnalysis):
    """var -> frozenset of definition sites ``(line, column)``.

    Parameters are defined at the function header.  A ``var`` declaration
    *without* an initializer contributes the :data:`UNINIT` pseudo-def,
    so a use reached by it is possibly uninitialized.
    """

    direction = "forward"

    def __init__(self, function: ast.FunctionDecl) -> None:
        self.function = function
        self.locals = declared_locals(function)

    def boundary(self, cfg: CFG) -> object:
        state = {name: frozenset([UNINIT]) for name in self.locals}
        for param in cfg.function.params:
            state[param.name] = frozenset(
                [(cfg.function.line, cfg.function.column)]
            )
        return state

    def initial(self) -> object:
        return {}

    def join(self, a: object, b: object) -> object:
        if not a:
            return b
        if not b:
            return a
        merged = dict(a)
        for name, defs in b.items():  # type: ignore[union-attr]
            merged[name] = merged.get(name, frozenset()) | defs
        return merged

    def transfer(self, node: CFGNode, state: object) -> object:
        name = node_local_def(node)
        if name is None or name not in self.locals:
            return state
        element = node.element
        if isinstance(element, ast.VarDecl) and element.initializer is None:
            new_defs = frozenset([UNINIT])
        else:
            new_defs = frozenset([(element.line, element.column)])
        updated = dict(state)  # type: ignore[arg-type]
        updated[name] = new_defs
        return updated


# --------------------------------------------------------------------------
# liveness
# --------------------------------------------------------------------------


class Liveness(DataflowAnalysis):
    """Backward live-variable analysis over function locals."""

    direction = "backward"

    def __init__(self, function: ast.FunctionDecl) -> None:
        self.function = function
        self.locals = declared_locals(function)

    def boundary(self, cfg: CFG) -> object:
        return frozenset()

    def initial(self) -> object:
        return frozenset()

    def join(self, a: object, b: object) -> object:
        return a | b  # type: ignore[operator]

    def transfer(self, node: CFGNode, state: object) -> object:
        live: frozenset = state  # type: ignore[assignment]
        name = node_local_def(node)
        if name is not None and name in self.locals:
            live = live - {name}
        reads = {
            ref.name for ref in node_reads(node) if ref.name in self.locals
        }
        return live | frozenset(reads)


# --------------------------------------------------------------------------
# interval / constant propagation
# --------------------------------------------------------------------------

_NEG_INF = None  # encoded as None in the lo slot
_POS_INF = None  # encoded as None in the hi slot

#: widening kicks in after this many visits to a block
WIDEN_AFTER = 3


@dataclass(frozen=True)
class Interval:
    """A (possibly unbounded) integer interval; ``None`` = infinite."""

    lo: Optional[int]
    hi: Optional[int]

    @classmethod
    def const(cls, value: int) -> "Interval":
        return cls(value, value)

    @classmethod
    def top(cls) -> "Interval":
        return cls(None, None)

    @property
    def is_const(self) -> bool:
        return self.lo is not None and self.lo == self.hi

    def hull(self, other: "Interval") -> "Interval":
        lo = None if self.lo is None or other.lo is None else min(self.lo, other.lo)
        hi = None if self.hi is None or other.hi is None else max(self.hi, other.hi)
        return Interval(lo, hi)

    def widened(self, newer: "Interval") -> "Interval":
        """Jump moving bounds to infinity (standard interval widening)."""
        lo = self.lo
        if newer.lo is None or (lo is not None and newer.lo < lo):
            lo = None
        hi = self.hi
        if newer.hi is None or (hi is not None and newer.hi > hi):
            hi = None
        return Interval(lo, hi)

    def add(self, other: "Interval") -> "Interval":
        lo = None if self.lo is None or other.lo is None else self.lo + other.lo
        hi = None if self.hi is None or other.hi is None else self.hi + other.hi
        return Interval(lo, hi)

    def neg(self) -> "Interval":
        return Interval(
            None if self.hi is None else -self.hi,
            None if self.lo is None else -self.lo,
        )

    def sub(self, other: "Interval") -> "Interval":
        return self.add(other.neg())

    def mul(self, other: "Interval") -> "Interval":
        corners = []
        for a in (self.lo, self.hi):
            for b in (other.lo, other.hi):
                if a is None or b is None:
                    return Interval.top()
                corners.append(a * b)
        return Interval(min(corners), max(corners))

    def __repr__(self) -> str:
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        return f"[{lo}, {hi}]"


@dataclass(frozen=True)
class ArrayRef:
    """A pointer known to address an array of ``length`` elements."""

    length: Optional[int]
    element_size: int


TOP = object()  # unknown value of unknown shape


class ValueAnalysis(DataflowAnalysis):
    """Interval/constant propagation with array-extent tracking.

    State: dict of local name -> :class:`Interval` | :class:`ArrayRef` |
    :data:`TOP`.  Globals, memory loads, and call results are ``TOP``
    (the linter stays intraprocedural); ``new T[k]`` with a constant
    ``k``, and references to declared global arrays, produce
    :class:`ArrayRef` so constant-index bound checks work on both heap
    and static arrays.
    """

    direction = "forward"

    def __init__(self, function: ast.FunctionDecl, program: ast.Program) -> None:
        self.function = function
        self.locals = declared_locals(function)
        self.global_arrays: Dict[str, Tuple[int, int]] = {}
        self._element_sizes: Dict[str, int] = {}
        try:
            from repro.lang.typesys import TypeTable

            types = TypeTable(program)
            for declaration in program.globals:
                resolved = types.resolve(declaration.type_expr)
                from repro.lang.typesys import ArrayType

                if isinstance(resolved, ArrayType):
                    self.global_arrays[declaration.name] = (
                        resolved.length,
                        resolved.element.size(),
                    )
            self._types = types
        except Exception:  # malformed types: checked elsewhere
            self._types = None

    # -- lattice ---------------------------------------------------------

    def boundary(self, cfg: CFG) -> object:
        return {name: TOP for name in self.locals}

    def initial(self) -> object:
        return {}

    def join(self, a: object, b: object) -> object:
        if not a:
            return b
        if not b:
            return a
        merged = {}
        for name in set(a) | set(b):  # type: ignore[arg-type]
            va = a.get(name, TOP)  # type: ignore[union-attr]
            vb = b.get(name, TOP)  # type: ignore[union-attr]
            if isinstance(va, Interval) and isinstance(vb, Interval):
                merged[name] = va.hull(vb)
            elif va == vb:
                merged[name] = va
            else:
                merged[name] = TOP
        return merged

    def widen(self, old: object, new: object, visits: int) -> object:
        if visits <= WIDEN_AFTER or not isinstance(old, dict):
            return new
        widened = dict(new)  # type: ignore[arg-type]
        for name, value in widened.items():
            previous = old.get(name)
            if isinstance(previous, Interval) and isinstance(value, Interval):
                widened[name] = previous.widened(value)
        return widened

    # -- transfer --------------------------------------------------------

    def transfer(self, node: CFGNode, state: object) -> object:
        name = node_local_def(node)
        if name is None or name not in self.locals:
            return state
        element = node.element
        if isinstance(element, ast.VarDecl):
            value_expr = element.initializer
            value = (
                Interval.const(0)
                if value_expr is None
                else self.eval(value_expr, state)
            )
        else:
            value = self.eval(element.value, state)  # type: ignore[union-attr]
        updated = dict(state)  # type: ignore[arg-type]
        updated[name] = value
        return updated

    # -- evaluation ------------------------------------------------------

    def eval(self, expr: Optional[ast.Expr], state: object) -> object:
        """Abstract evaluation of ``expr`` in ``state``."""
        env: Dict[str, object] = state if isinstance(state, dict) else {}
        if expr is None:
            return TOP
        if isinstance(expr, ast.IntLiteral):
            return Interval.const(expr.value)
        if isinstance(expr, ast.NullLiteral):
            return Interval.const(0)
        if isinstance(expr, ast.VarRef):
            if expr.name in env:
                return env[expr.name]
            if expr.name in self.global_arrays:
                length, size = self.global_arrays[expr.name]
                return ArrayRef(length, size)
            return TOP
        if isinstance(expr, ast.Unary):
            inner = self.eval(expr.operand, state)
            if expr.op == "-" and isinstance(inner, Interval):
                return inner.neg()
            return TOP
        if isinstance(expr, ast.Binary):
            left = self.eval(expr.left, state)
            right = self.eval(expr.right, state)
            if isinstance(left, Interval) and isinstance(right, Interval):
                if expr.op == "+":
                    return left.add(right)
                if expr.op == "-":
                    return left.sub(right)
                if expr.op == "*":
                    return left.mul(right)
            return TOP
        if isinstance(expr, ast.New):
            return self._eval_new(expr, state)
        return TOP

    def _eval_new(self, expr: ast.New, state: object) -> object:
        element_size = 8
        if self._types is not None:
            try:
                element_size = self._types.resolve(expr.type_expr).size()
            except Exception:
                return TOP
        if expr.count is None:
            return ArrayRef(1, element_size)
        count = self.eval(expr.count, state)
        if isinstance(count, Interval) and count.is_const:
            return ArrayRef(count.lo, element_size)
        return ArrayRef(None, element_size)
