"""Tests for the heap allocator policies."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.allocator import (
    ALL_POLICIES,
    HEADER_SIZE,
    MIN_ALIGN,
    AllocatorError,
    BumpAllocator,
    FreeListAllocator,
    SegregatedFitAllocator,
    make_allocator,
)
from repro.runtime.memory import AddressSpace


def fresh(policy: str):
    return make_allocator(policy, AddressSpace().heap)


class TestFactory:
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_known_policies(self, policy):
        allocator = fresh(policy)
        assert allocator.name in (policy, policy)

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            fresh("buddy")


class TestCommonBehaviour:
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_allocations_are_aligned(self, policy):
        allocator = fresh(policy)
        for size in (1, 7, 8, 15, 100, 4097):
            assert allocator.malloc(size) % MIN_ALIGN == 0

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_live_blocks_do_not_overlap(self, policy):
        allocator = fresh(policy)
        rng = random.Random(7)
        live = {}
        for step in range(300):
            if live and rng.random() < 0.4:
                victim = rng.choice(list(live))
                allocator.free(victim)
                del live[victim]
            else:
                size = rng.randint(1, 500)
                address = allocator.malloc(size)
                live[address] = size
            ranges = sorted((a, a + s) for a, s in live.items())
            for (_, end), (start, _) in zip(ranges, ranges[1:]):
                assert end <= start, f"overlap after step {step}"

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_free_returns_size(self, policy):
        allocator = fresh(policy)
        address = allocator.malloc(100)
        assert allocator.free(address) == 100

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_double_free_rejected(self, policy):
        allocator = fresh(policy)
        address = allocator.malloc(64)
        allocator.free(address)
        with pytest.raises(AllocatorError):
            allocator.free(address)

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_free_of_garbage_rejected(self, policy):
        allocator = fresh(policy)
        with pytest.raises(AllocatorError):
            allocator.free(0xDEAD0)

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_nonpositive_malloc_rejected(self, policy):
        allocator = fresh(policy)
        with pytest.raises(AllocatorError):
            allocator.malloc(0)
        with pytest.raises(AllocatorError):
            allocator.malloc(-8)

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_live_accounting(self, policy):
        allocator = fresh(policy)
        a = allocator.malloc(100)
        b = allocator.malloc(200)
        assert allocator.live_bytes() == 300
        assert allocator.live_blocks() == 2
        allocator.free(a)
        assert allocator.live_bytes() == 200
        assert allocator.size_of(b) == 200
        assert allocator.size_of(a) is None


class TestBump:
    def test_monotonic(self):
        allocator = fresh("bump")
        addresses = [allocator.malloc(32) for __ in range(10)]
        assert addresses == sorted(addresses)

    def test_never_reuses(self):
        allocator = fresh("bump")
        a = allocator.malloc(64)
        allocator.free(a)
        b = allocator.malloc(64)
        assert b != a

    def test_out_of_memory(self):
        space = AddressSpace(heap_size=1 << 16)
        allocator = BumpAllocator(space.heap)
        with pytest.raises(AllocatorError):
            for __ in range(10000):
                allocator.malloc(1024)


class TestFreeList:
    def test_first_fit_reuses_freed_block(self):
        allocator = fresh("first-fit")
        a = allocator.malloc(64)
        allocator.malloc(64)  # keep the heap from coalescing to one block
        allocator.free(a)
        b = allocator.malloc(64)
        assert b == a  # address reuse: the paper's false-aliasing artifact

    def test_best_fit_prefers_tightest_hole(self):
        allocator = FreeListAllocator(AddressSpace().heap, policy="best-fit")
        big = allocator.malloc(512)
        allocator.malloc(16)
        small = allocator.malloc(64)
        allocator.malloc(16)
        allocator.free(big)
        allocator.free(small)
        # A 64-byte request should land in the 64-byte hole, not the 512.
        assert allocator.malloc(60) == small

    def test_unknown_placement_policy(self):
        with pytest.raises(ValueError):
            FreeListAllocator(AddressSpace().heap, policy="worst-fit")

    def test_coalescing_allows_big_realloc(self):
        space = AddressSpace(heap_size=1 << 14)  # 16 KiB heap
        allocator = FreeListAllocator(space.heap)
        blocks = [allocator.malloc(1024) for __ in range(10)]
        for block in blocks:
            allocator.free(block)
        # Only possible if adjacent freed blocks coalesced.
        allocator.malloc(8 * 1024)

    def test_split_leaves_usable_remainder(self):
        allocator = fresh("first-fit")
        a = allocator.malloc(64)
        b = allocator.malloc(64)
        assert b - a >= 64 + HEADER_SIZE

    def test_fragmentation_metric(self):
        allocator = FreeListAllocator(AddressSpace().heap)
        assert allocator.fragmentation() == 0.0
        keep = []
        holes = []
        for __ in range(6):
            holes.append(allocator.malloc(128))
            keep.append(allocator.malloc(128))
        for hole in holes:
            allocator.free(hole)
        assert allocator.fragmentation() > 0.0

    def test_out_of_memory(self):
        space = AddressSpace(heap_size=1 << 14)
        allocator = FreeListAllocator(space.heap)
        with pytest.raises(AllocatorError):
            allocator.malloc(1 << 20)


class TestSegregated:
    def test_lifo_reuse_within_class(self):
        allocator = fresh("segregated")
        a = allocator.malloc(48)
        allocator.free(a)
        assert allocator.malloc(40) == a  # same size class, LIFO

    def test_different_classes_do_not_share(self):
        allocator = fresh("segregated")
        a = allocator.malloc(16)
        allocator.free(a)
        b = allocator.malloc(4096)
        assert b != a

    def test_huge_request(self):
        allocator = fresh("segregated")
        address = allocator.malloc(100_000)
        assert allocator.size_of(address) == 100_000

    def test_out_of_memory(self):
        space = AddressSpace(heap_size=1 << 14)
        allocator = SegregatedFitAllocator(space.heap)
        with pytest.raises(AllocatorError):
            for __ in range(10000):
                allocator.malloc(512)


@st.composite
def malloc_free_script(draw):
    """A random sequence of malloc/free operations."""
    operations = []
    live = 0
    for __ in range(draw(st.integers(0, 60))):
        if live and draw(st.booleans()):
            operations.append(("free", draw(st.integers(0, live - 1))))
            live -= 1
        else:
            operations.append(("malloc", draw(st.integers(1, 2000))))
            live += 1
    return operations


class TestPropertyBased:
    @settings(max_examples=60, deadline=None)
    @given(script=malloc_free_script(), policy=st.sampled_from(ALL_POLICIES))
    def test_invariants_under_random_scripts(self, script, policy):
        allocator = fresh(policy)
        live = []  # (address, size)
        for op, value in script:
            if op == "malloc":
                address = allocator.malloc(value)
                assert address % MIN_ALIGN == 0
                live.append((address, value))
            else:
                address, size = live.pop(value % len(live))
                assert allocator.free(address) == size
        # no two live blocks overlap
        ranges = sorted((a, a + s) for a, s in live)
        for (_, end), (start, _) in zip(ranges, ranges[1:]):
            assert end <= start
        assert allocator.live_blocks() == len(live)
        assert allocator.live_bytes() == sum(s for _, s in live)
