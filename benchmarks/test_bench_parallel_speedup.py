"""Serial-vs-parallel wall-clock for the profiling pipeline.

Records the serial and ``jobs=4`` timings of WHOMP (dimension fan-out)
and LEAP (substream-shard fan-out) on the largest micro workload into
the bench JSON (``extra_info``), so the perf trajectory of the parallel
subsystem is tracked run over run.

The speedup assertion is gated on the machine actually having multiple
CPUs: on a single-core container a process pool can only add overhead,
and asserting ``> 1.0`` there would test the scheduler, not the code.
Equality of output is asserted unconditionally — a "speedup" that
changes the profile would be a bug, not a win.
"""

import os
import time

from repro.parallel import fork_available
from repro.profilers.leap import LeapProfiler
from repro.profilers.whomp import WhompProfiler
from repro.workloads.registry import create

PARALLEL_JOBS = 4


def _cpus():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _large_trace():
    return create("micro.array", scale=3.0).trace()


def _best_of(function, rounds=3):
    timings = []
    for __ in range(rounds):
        start = time.perf_counter()
        function()
        timings.append(time.perf_counter() - start)
    return min(timings)


def _record(benchmark, serial_seconds, parallel_seconds):
    speedup = serial_seconds / parallel_seconds if parallel_seconds else 0.0
    benchmark.extra_info["serial_seconds"] = serial_seconds
    benchmark.extra_info["parallel_seconds"] = parallel_seconds
    benchmark.extra_info["jobs"] = PARALLEL_JOBS
    benchmark.extra_info["cpus"] = _cpus()
    benchmark.extra_info["speedup"] = speedup
    if fork_available() and _cpus() >= 2:
        assert speedup > 1.0, (
            f"parallel pipeline slower than serial on {_cpus()} CPUs "
            f"({parallel_seconds:.2f}s vs {serial_seconds:.2f}s)"
        )


def test_whomp_parallel_speedup(benchmark):
    trace = _large_trace()
    serial_profiler = WhompProfiler()
    parallel_profiler = WhompProfiler(jobs=PARALLEL_JOBS)

    serial_profile = serial_profiler.profile(trace)  # warm + reference
    serial_seconds = _best_of(lambda: serial_profiler.profile(trace))
    parallel_profile = benchmark.pedantic(
        parallel_profiler.profile, args=(trace,), rounds=1, iterations=1
    )
    parallel_seconds = _best_of(lambda: parallel_profiler.profile(trace))
    assert parallel_profile.size_bytes_varint() == serial_profile.size_bytes_varint()
    assert parallel_profile.access_count == serial_profile.access_count
    _record(benchmark, serial_seconds, parallel_seconds)


def test_leap_parallel_speedup(benchmark):
    trace = _large_trace()
    serial_profiler = LeapProfiler()
    parallel_profiler = LeapProfiler(jobs=PARALLEL_JOBS)

    serial_profile = serial_profiler.profile(trace)  # warm + reference
    serial_seconds = _best_of(lambda: serial_profiler.profile(trace))
    parallel_profile = benchmark.pedantic(
        parallel_profiler.profile, args=(trace,), rounds=1, iterations=1
    )
    parallel_seconds = _best_of(lambda: parallel_profiler.profile(trace))
    assert parallel_profile.entries == serial_profile.entries
    assert parallel_profile.exec_counts == serial_profile.exec_counts
    _record(benchmark, serial_seconds, parallel_seconds)
