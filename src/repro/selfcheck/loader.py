"""Source discovery, parsing, and ``# repro:`` directive scanning.

The analyzer never imports the code it checks: every module is parsed
with :mod:`ast` and analyzed structurally, so a seeded-defect fixture
(or a module whose import would start a daemon) is as safe to check as
a pure library.

Directives are trailing (or whole-line) comments:

``# repro: shared``
    on a ``class`` line -- instances are reachable from several threads
    and participate in lockset checking.
``# repro: synchronized-externally``
    on a ``class`` line -- the class is documented as guarded by its
    owner's lock; its internals are exempt from RL101/RL102/RL105, and
    call sites inside shared classes are checked instead (RL104).
``# repro: allow(RL101[, RL103])``
    suppress the listed codes (or ``all``) on this line only.
``# repro: expect(RL101)``
    fixture annotation: the fixtures self-test asserts the code fires
    exactly here.
``# repro: fixture`` / ``# repro: workers`` / ``# repro:
durable-primitive`` / ``# repro: capture-path``
    module markers (any line): seeded-defect module excluded from
    normal sweeps; module of pool worker functions; module that *is*
    the atomic-write implementation; module on the seed-deterministic
    capture path regardless of its package.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set

# the negative lookbehind keeps backtick-quoted mentions in docstrings
# (``# repro: fixture``) from acting as live directives
_ALLOW_RE = re.compile(r"(?<!`)#\s*repro:\s*allow\(([^)]*)\)")
_EXPECT_RE = re.compile(r"(?<!`)#\s*repro:\s*expect\(([^)]*)\)")
_MARKER_RE = re.compile(
    r"(?<!`)#\s*repro:\s*(fixture|workers|durable-primitive|capture-path)\b"
)
_CLASS_RE = re.compile(
    r"(?<!`)#\s*repro:\s*(shared|synchronized-externally)\b"
)


class SelfCheckError(Exception):
    """A file the analyzer was pointed at cannot be analyzed."""


@dataclass
class SourceModule:
    """One parsed source file plus its scanned directives."""

    path: str
    name: str
    source: str
    tree: ast.Module
    #: line -> codes allowed on that line (or {"all"})
    suppressions: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    #: line -> codes a fixture expects to fire on that line
    expects: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    #: module-level markers: fixture / workers / durable-primitive / ...
    markers: Set[str] = field(default_factory=set)
    #: line -> class-level directives (shared / synchronized-externally)
    class_marks: Dict[int, Set[str]] = field(default_factory=dict)

    @property
    def is_fixture(self) -> bool:
        return "fixture" in self.markers


def _codes_of(group: str) -> FrozenSet[str]:
    return frozenset(
        item.strip() for item in group.split(",") if item.strip()
    )


def module_name_for(path: str) -> str:
    """Dotted module name, anchored at the deepest ``repro`` segment."""
    parts = os.path.normpath(os.path.abspath(path)).split(os.sep)
    stem = parts[-1][:-3] if parts[-1].endswith(".py") else parts[-1]
    for index in range(len(parts) - 2, -1, -1):
        if parts[index] == "repro":
            dotted = parts[index:-1] + ([] if stem == "__init__" else [stem])
            return ".".join(dotted)
    return stem


def scan_source(path: str, source: str) -> SourceModule:
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise SelfCheckError(
            f"{path}:{exc.lineno or 0}: syntax error: {exc.msg}"
        ) from exc
    module = SourceModule(
        path=path, name=module_name_for(path), source=source, tree=tree
    )
    for number, text in enumerate(source.splitlines(), start=1):
        match = _ALLOW_RE.search(text)
        if match:
            codes = _codes_of(match.group(1))
            if codes:
                module.suppressions[number] = codes
        match = _EXPECT_RE.search(text)
        if match:
            codes = _codes_of(match.group(1))
            if codes:
                module.expects[number] = codes
        for marker in _MARKER_RE.findall(text):
            module.markers.add(marker)
        match = _CLASS_RE.search(text)
        if match:
            module.class_marks.setdefault(number, set()).add(match.group(1))
    return module


def load_file(path: str) -> SourceModule:
    try:
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
    except OSError as exc:
        raise SelfCheckError(f"cannot read {path!r}: {exc}") from exc
    return scan_source(path, source)


def discover(paths: List[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[str] = []
    seen: Set[str] = set()
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if d not in ("__pycache__", ".git", ".hypothesis")
                )
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        full = os.path.join(dirpath, filename)
                        if full not in seen:
                            seen.add(full)
                            out.append(full)
        elif path.endswith(".py"):
            if path not in seen:
                seen.add(path)
                out.append(path)
        else:
            raise SelfCheckError(
                f"{path!r} is neither a directory nor a .py file"
            )
    return out


def load_tree(
    paths: List[str], include_fixtures: bool = False
) -> List[SourceModule]:
    """Load every analyzable module under ``paths``.

    Seeded-defect fixture modules (``# repro: fixture``) are skipped
    unless ``include_fixtures`` -- they exist to *fail* the checkers,
    like the ``defects_*.mir`` programs MIRCHECK ships.
    """
    modules: List[SourceModule] = []
    for path in discover(paths):
        module = load_file(path)
        if module.is_fixture and not include_fixtures:
            continue
        modules.append(module)
    return modules


def class_directives(
    module: SourceModule, node: ast.ClassDef
) -> Set[str]:
    """Class-level directives attached to a ``class`` statement.

    The directive comment may trail any line of the class signature
    (decorators included), so multi-line signatures still annotate.
    """
    first = min(
        [node.lineno] + [d.lineno for d in node.decorator_list]
    )
    last = max(node.lineno, getattr(node, "end_lineno", node.lineno))
    body_start = min(child.lineno for child in node.body)
    out: Set[str] = set()
    for line in range(first, min(last, body_start - 1) + 1):
        out |= module.class_marks.get(line, set())
    # also accept the directive on the signature line itself when the
    # body starts on the same line (one-liner classes in fixtures)
    out |= module.class_marks.get(node.lineno, set())
    return out


def enclosing_symbol(stack: List[ast.AST]) -> str:
    names = [
        node.name
        for node in stack
        if isinstance(
            node, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
        )
    ]
    return ".".join(names)


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
