"""Bench: cross-input generalization of the profiles.

The whole premise of feedback-directed optimization is that a profile
collected on a *training* input guides optimization of *other* inputs
(Section 1: "even a slightly different input set could lead to
radically different data footprint" -- for raw addresses; the
object-relative representation is what survives the input change).

Train on seed 0, deploy on seed 1:

* the speculative-load schedule planned from the training LEAP profile
  is scored against the deployment run's ground truth;
* the strongly-strided instruction set identified on the training input
  is compared to the deployment input's real set.

Both should transfer nearly perfectly: the workloads' *structure* is
input-independent even though every address and footprint changes.
"""

from conftest import SCALE, once

from repro.baselines.dependence_lossless import LosslessDependenceProfiler
from repro.baselines.stride_lossless import LosslessStrideProfiler
from repro.postprocess.dependence import analyze_dependences
from repro.postprocess.speculation import evaluate
from repro.postprocess.strides import LeapStrideAnalyzer, stride_score
from repro.profilers.leap import LeapProfiler
from repro.workloads.registry import create

BENCHMARKS = ("gzip", "crafty", "twolf")


def test_speculation_decisions_transfer_across_inputs(benchmark):
    def measure():
        results = {}
        for name in BENCHMARKS:
            train = create(name, scale=SCALE, seed=0).trace()
            deploy = create(name, scale=SCALE, seed=1).trace()
            trained = analyze_dependences(LeapProfiler().profile(train))
            deploy_truth = LosslessDependenceProfiler().profile(deploy)
            quality, cost, oracle_cost = evaluate(trained, deploy_truth)
            results[name] = (quality.agreement_rate, cost, oracle_cost)
        return results

    results = once(benchmark, measure)
    print()
    for name, (agreement, cost, oracle_cost) in results.items():
        print(f"{name:8s} cross-input agreement {agreement:.1%}, "
              f"schedule cost {cost:.0f} (oracle {oracle_cost:.0f})")
    for name, (agreement, cost, oracle_cost) in results.items():
        assert agreement > 0.85
        assert cost <= 0  # still a net win on the unseen input
        assert cost >= oracle_cost


def test_stride_sets_transfer_across_inputs(benchmark):
    def measure():
        scores = {}
        for name in BENCHMARKS:
            train = create(name, scale=SCALE, seed=0).trace()
            deploy = create(name, scale=SCALE, seed=1).trace()
            identified = LeapStrideAnalyzer().strongly_strided(
                LeapProfiler().profile(train)
            )
            real = LosslessStrideProfiler().profile(deploy).strongly_strided()
            scores[name] = stride_score(identified, real)
        return scores

    scores = once(benchmark, measure)
    print()
    for name, score in scores.items():
        print(f"{name:8s} cross-input stride score "
              f"{score:.0%}" if score is not None else f"{name}: n/a")
    valid = [s for s in scores.values() if s is not None]
    assert valid
    assert sum(valid) / len(valid) > 0.7
