"""300.twolf stand-in: standard-cell placement by simulated annealing.

twolf keeps many small cell structs on the heap (one allocation site,
hundreds of objects).  Each annealing move reads the global annealing
state (temperature, range limiter, cost accumulators -- constant
addresses, every move), reads both candidate cells' geometry fields
(distinct static instruction per field, data-dependent cell), walks the
two nets watching the first cell, and commits accepted swaps plus a
row-cost update on a fixed period.  Every 128 moves a full strided
sweep recomputes the row-cost array.

The heavy constant-address scalar traffic plus the periodic row sweeps
are what LEAP's LMADs hold onto (the paper measures 66.5% of accesses
captured for twolf), while the random cell visits stay uncompressed.
The many same-shaped cell objects read with one fixed field pattern are
the sweet spot of object-relative decomposition.
"""

from __future__ import annotations

from repro.core.events import AccessKind
from repro.runtime.process import Process
from repro.workloads.base import REGISTRY, Workload

WORD = 8
CELL_BYTES = 64  # x, y, width, height, orient, net-list head, ...
CELL_FIELDS = 3

#: distinct annealing-state scalars touched every move
STATE_SCALARS = 4


@REGISTRY.register
class TwolfWorkload(Workload):
    name = "twolf"
    description = "cell placement: scalar annealing state + cell reads + swaps"

    def __init__(
        self,
        scale: float = 1.0,
        seed: int = 0,
        cells: int = 420,
        nets: int = 500,
        net_span: int = 3,
        moves: int = 2400,
        rows: int = 1024,
        sweep_period: int = 80,
    ) -> None:
        super().__init__(scale=scale, seed=seed)
        self.cells = cells
        self.nets = nets
        self.net_span = net_span
        self.moves = moves
        self.rows = rows
        self.sweep_period = sweep_period

    def run(self, process: Process) -> None:
        rng = self.rng()
        self.declare_cold_statics(process)
        process.declare_static("row_cost", self.rows * WORD, type_name="int[]")
        process.declare_static(
            "anneal_state", STATE_SCALARS * WORD, type_name="state"
        )
        row_cost = process.static("row_cost").address
        state = process.static("anneal_state").address

        st_init = process.instruction("readcells.store_field", AccessKind.STORE)
        ld_state = [
            process.instruction(f"anneal.load_state_{k}", AccessKind.LOAD)
            for k in range(STATE_SCALARS - 1)
        ]
        st_state = [
            process.instruction(f"anneal.store_state_{k}", AccessKind.STORE)
            for k in range(1)
        ]
        ld_geom = [
            process.instruction(f"move.load_cell_field_{f}", AccessKind.LOAD)
            for f in range(CELL_FIELDS)
        ]
        ld_net = process.instruction("wirelen.load_cell", AccessKind.LOAD)
        st_swap_x = process.instruction("accept.store_x", AccessKind.STORE)
        st_swap_y = process.instruction("accept.store_y", AccessKind.STORE)
        ld_row = process.instruction("rowcost.load", AccessKind.LOAD)
        st_row = process.instruction("rowcost.store", AccessKind.STORE)
        ld_sweep = process.instruction("rowsweep.load", AccessKind.LOAD)
        st_sweep = process.instruction("rowsweep.store", AccessKind.STORE)
        ld_density = process.instruction("density.load_cell", AccessKind.LOAD)
        st_density = process.instruction("density.store_cell", AccessKind.STORE)

        self.run_startup(process, sites=2)
        cell_count = self.scaled(self.cells)
        cells = []
        for __ in range(cell_count):
            cell = process.malloc("twolf.cell", CELL_BYTES, type_name="cell")
            for field in range(CELL_FIELDS):
                process.store(st_init, cell + field * WORD)
            cells.append(cell)

        nets = [
            [rng.randrange(cell_count) for __ in range(self.net_span)]
            for __ in range(self.nets)
        ]
        # Every cell watches exactly two nets, assigned round-robin, so
        # the per-move wirelength walk has a fixed shape.
        nets_of_cell = [
            (cell % self.nets, (cell * 7 + 1) % self.nets)
            for cell in range(cell_count)
        ]

        for move in range(self.scaled(self.moves)):
            # Global annealing state: constant addresses, every move.
            for k, instr in enumerate(ld_state):
                process.load(instr, state + k * WORD)
            for k, instr in enumerate(st_state):
                process.store(instr, state + k * WORD)
            a = rng.randrange(cell_count)
            b = rng.randrange(cell_count)
            # Identical geometry-read pattern on both cells.
            for cell in (cells[a], cells[b]):
                for field, instr in enumerate(ld_geom):
                    process.load(instr, cell + field * WORD)
            # Wirelength: visit every cell on the two nets watching `a`.
            for net_id in nets_of_cell[a]:
                for member in nets[net_id]:
                    process.load(ld_net, cells[member])
            # Commit: swap positions, update the two affected rows
            # (high-temperature annealing accepts essentially always).
            for cell in (cells[a], cells[b]):
                process.store(st_swap_x, cell)
                process.store(st_swap_y, cell + WORD)
            for row in (a % self.rows, b % self.rows):
                process.load(ld_row, row_cost + row * WORD)
                process.store(st_row, row_cost + row * WORD)
            if move % self.sweep_period == 0:
                # Periodic full recomputation of the row costs.
                for row in range(self.rows):
                    process.load(ld_sweep, row_cost + row * WORD)
                    process.store(st_sweep, row_cost + row * WORD)
            if move % 256 == 0:
                # Density check: walk every cell in allocation order.
                # Cells are adjacent in raw memory, so this is strongly
                # strided at the address level -- but it crosses objects,
                # which LEAP's within-object stride rule cannot see (the
                # paper's Figure 9 misses have the same cause).
                for cell in cells:
                    process.load(ld_density, cell + 2 * WORD)
                    process.store(st_density, cell + 2 * WORD)

        for cell in cells:
            process.free(cell)
        self.run_shutdown(process, sites=2)
