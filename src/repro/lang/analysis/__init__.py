"""Static analysis over the mini-IR: CFG, dataflow, lint, LMAD inference.

This package is MIRCHECK, the static counterpart of the dynamic
profilers: where LEAP observes a program's memory accesses and
compresses them into LMADs, :mod:`repro.lang.analysis.static_lmad`
*predicts* those LMADs from the source alone, and
:mod:`repro.lang.analysis.oracle` checks the two against each other.
The same CFG/dataflow machinery also powers a conventional linter
(:mod:`repro.lang.analysis.lint`).
"""

from repro.lang.analysis.cfg import CFG, BasicBlock, CFGBuilder, CFGNode, build_cfg
from repro.lang.analysis.dataflow import (
    ArrayRef,
    DataflowAnalysis,
    Interval,
    Liveness,
    ReachingDefinitions,
    Solution,
    ValueAnalysis,
    solve,
)
from repro.lang.analysis.diagnostics import (
    CODES,
    Diagnostic,
    DiagnosticSink,
    suppressed_lines,
)
from repro.lang.analysis.affine import Affine
from repro.lang.analysis.lint import HeapAnalysis, Linter, lint_program, lint_source
from repro.lang.analysis.oracle import (
    OracleReport,
    StaticOracle,
    canonical_lmads,
    validate_source,
)
from repro.lang.analysis.static_lmad import (
    PROVED_INDEPENDENT,
    PROVED_REGULAR,
    UNKNOWN_CLASS,
    StaticLmadAnalyzer,
    StaticLmadResult,
    analyze_source,
)

__all__ = [
    "CFG",
    "BasicBlock",
    "CFGBuilder",
    "CFGNode",
    "build_cfg",
    "ArrayRef",
    "DataflowAnalysis",
    "Interval",
    "Liveness",
    "ReachingDefinitions",
    "Solution",
    "ValueAnalysis",
    "solve",
    "CODES",
    "Diagnostic",
    "DiagnosticSink",
    "suppressed_lines",
    "HeapAnalysis",
    "Linter",
    "lint_program",
    "lint_source",
    "Affine",
    "OracleReport",
    "StaticOracle",
    "canonical_lmads",
    "validate_source",
    "PROVED_INDEPENDENT",
    "PROVED_REGULAR",
    "UNKNOWN_CLASS",
    "StaticLmadAnalyzer",
    "StaticLmadResult",
    "analyze_source",
]
