"""Affine forms over loop symbols: ``c0 + c1*s1 + ... + ck*sk``.

The static LMAD inference represents every statically-tracked integer
(loop counters, pointer offsets, allocation instance numbers) as an
affine combination of *normalized loop counters* -- fresh symbols, one
per recognized counted loop, each ranging over ``0..trips-1``.  An
access whose offset stays affine in those symbols has, by construction,
a closed LMAD: the constant part is the start, each symbol's
coefficient is a stride, and the symbol's trip count is the count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class Affine:
    """An immutable affine form; ``terms`` maps symbol -> coefficient."""

    const: int = 0
    terms: Tuple[Tuple[str, int], ...] = ()

    @classmethod
    def constant(cls, value: int) -> "Affine":
        return cls(value, ())

    @classmethod
    def symbol(cls, name: str, coefficient: int = 1) -> "Affine":
        if coefficient == 0:
            return cls(0, ())
        return cls(0, ((name, coefficient),))

    @classmethod
    def _from_dict(cls, const: int, terms: Dict[str, int]) -> "Affine":
        packed = tuple(
            (name, coefficient)
            for name, coefficient in sorted(terms.items())
            if coefficient != 0
        )
        return cls(const, packed)

    # -- queries ---------------------------------------------------------

    @property
    def is_const(self) -> bool:
        return not self.terms

    def coeff(self, symbol: str) -> int:
        for name, coefficient in self.terms:
            if name == symbol:
                return coefficient
        return 0

    def symbols(self) -> Tuple[str, ...]:
        return tuple(name for name, __ in self.terms)

    # -- arithmetic ------------------------------------------------------

    def add(self, other: "Affine") -> "Affine":
        terms = dict(self.terms)
        for name, coefficient in other.terms:
            terms[name] = terms.get(name, 0) + coefficient
        return Affine._from_dict(self.const + other.const, terms)

    def neg(self) -> "Affine":
        return Affine(
            -self.const,
            tuple((name, -coefficient) for name, coefficient in self.terms),
        )

    def sub(self, other: "Affine") -> "Affine":
        return self.add(other.neg())

    def scale(self, factor: int) -> "Affine":
        if factor == 0:
            return Affine.constant(0)
        return Affine(
            self.const * factor,
            tuple(
                (name, coefficient * factor)
                for name, coefficient in self.terms
            ),
        )

    def mul(self, other: "Affine") -> Optional["Affine"]:
        """Product, affine only when at least one side is constant."""
        if self.is_const:
            return other.scale(self.const)
        if other.is_const:
            return self.scale(other.const)
        return None

    def add_const(self, value: int) -> "Affine":
        return Affine(self.const + value, self.terms)

    def __repr__(self) -> str:
        parts = [str(self.const)] if self.const or not self.terms else []
        for name, coefficient in self.terms:
            if coefficient == 1:
                parts.append(name)
            else:
                parts.append(f"{coefficient}*{name}")
        return " + ".join(parts) if parts else "0"
