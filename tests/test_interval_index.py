"""Tests for the B-tree map and the live-object interval index."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.interval_index import BTreeMap, IntervalIndex


class TestBTreeBasics:
    def test_insert_get(self):
        tree = BTreeMap()
        tree.insert(5, "five")
        assert tree.get(5) == "five"
        assert tree.get(6) is None
        assert tree.get(6, "dflt") == "dflt"

    def test_overwrite(self):
        tree = BTreeMap()
        tree.insert(5, "a")
        tree.insert(5, "b")
        assert tree.get(5) == "b"
        assert len(tree) == 1

    def test_contains(self):
        tree = BTreeMap()
        tree.insert(1, None)  # None values are legal
        assert 1 in tree
        assert 2 not in tree

    def test_delete(self):
        tree = BTreeMap()
        tree.insert(1, "x")
        assert tree.delete(1) == "x"
        assert len(tree) == 0
        with pytest.raises(KeyError):
            tree.delete(1)

    def test_items_sorted(self):
        tree = BTreeMap(min_degree=2)
        for key in [5, 3, 8, 1, 9, 2, 7]:
            tree.insert(key, key * 10)
        assert [k for k, __ in tree.items()] == [1, 2, 3, 5, 7, 8, 9]

    def test_floor_item(self):
        tree = BTreeMap()
        for key in (10, 20, 30):
            tree.insert(key, str(key))
        assert tree.floor_item(5) is None
        assert tree.floor_item(10) == (10, "10")
        assert tree.floor_item(25) == (20, "20")
        assert tree.floor_item(99) == (30, "30")

    def test_min_degree_validation(self):
        with pytest.raises(ValueError):
            BTreeMap(min_degree=1)


class TestBTreeStress:
    @pytest.mark.parametrize("min_degree", [2, 3, 16])
    def test_random_operations_match_dict(self, min_degree):
        rng = random.Random(min_degree)
        tree = BTreeMap(min_degree=min_degree)
        reference = {}
        for step in range(3000):
            key = rng.randint(0, 400)
            if rng.random() < 0.55 or not reference:
                tree.insert(key, step)
                reference[key] = step
            else:
                victim = rng.choice(list(reference))
                assert tree.delete(victim) == reference.pop(victim)
            if step % 500 == 0:
                tree.check_invariants()
        tree.check_invariants()
        assert dict(tree.items()) == reference

    def test_sequential_insert_then_delete_all(self):
        tree = BTreeMap(min_degree=3)
        for key in range(500):
            tree.insert(key, key)
        tree.check_invariants()
        for key in range(500):
            assert tree.delete(key) == key
        assert len(tree) == 0

    def test_reverse_delete(self):
        tree = BTreeMap(min_degree=2)
        for key in range(200):
            tree.insert(key, key)
        for key in reversed(range(200)):
            tree.delete(key)
        tree.check_invariants()
        assert len(tree) == 0


@settings(max_examples=80, deadline=None)
@given(
    operations=st.lists(
        st.tuples(st.booleans(), st.integers(0, 60)), max_size=120
    ),
    min_degree=st.sampled_from([2, 3, 5]),
)
def test_btree_property_vs_dict(operations, min_degree):
    tree = BTreeMap(min_degree=min_degree)
    reference = {}
    for is_insert, key in operations:
        if is_insert or key not in reference:
            tree.insert(key, key * 3)
            reference[key] = key * 3
        else:
            assert tree.delete(key) == reference.pop(key)
    tree.check_invariants()
    assert dict(tree.items()) == reference
    for probe in range(-1, 62):
        expected = max((k for k in reference if k <= probe), default=None)
        hit = tree.floor_item(probe)
        assert (hit[0] if hit else None) == expected


class TestIntervalIndex:
    def test_resolve_inside(self):
        index = IntervalIndex()
        index.insert(100, 200, "obj")
        assert index.resolve(100) == (100, 200, "obj")
        assert index.resolve(199) == (100, 200, "obj")

    def test_resolve_outside(self):
        index = IntervalIndex()
        index.insert(100, 200, "obj")
        assert index.resolve(99) is None
        assert index.resolve(200) is None

    def test_overlap_rejected(self):
        index = IntervalIndex()
        index.insert(100, 200, "a")
        with pytest.raises(ValueError):
            index.insert(150, 250, "b")
        with pytest.raises(ValueError):
            index.insert(50, 101, "b")
        with pytest.raises(ValueError):
            index.insert(120, 130, "b")

    def test_adjacent_ok(self):
        index = IntervalIndex()
        index.insert(100, 200, "a")
        index.insert(200, 300, "b")
        index.insert(50, 100, "c")
        assert index.resolve(200)[2] == "b"

    def test_empty_interval_rejected(self):
        index = IntervalIndex()
        with pytest.raises(ValueError):
            index.insert(100, 100, "a")

    def test_remove(self):
        index = IntervalIndex()
        index.insert(100, 200, "a")
        assert index.remove(100) == "a"
        assert index.resolve(150) is None
        with pytest.raises(KeyError):
            index.remove(100)

    def test_remove_then_reinsert(self):
        index = IntervalIndex()
        index.insert(100, 200, "a")
        index.remove(100)
        index.insert(120, 220, "b")  # overlapping the old range is fine now
        assert index.resolve(150)[2] == "b"

    def test_items(self):
        index = IntervalIndex()
        index.insert(300, 400, "b")
        index.insert(100, 200, "a")
        assert list(index.items()) == [(100, 200, "a"), (300, 400, "b")]
        assert len(index) == 2


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 50), st.integers(1, 10)), max_size=40))
def test_interval_index_property(spans):
    """Insert non-overlapping spans; resolution must match brute force."""
    index = IntervalIndex(min_degree=2)
    accepted = []
    for start, length in spans:
        end = start + length
        if any(s < end and start < e for s, e, __ in accepted):
            continue
        index.insert(start, end, (start, end))
        accepted.append((start, end, (start, end)))
    for probe in range(0, 65):
        expected = next(
            ((s, e, p) for s, e, p in accepted if s <= probe < e), None
        )
        assert index.resolve(probe) == expected
