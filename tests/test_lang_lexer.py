"""Tests for the mini-IR lexer."""

import pytest

from repro.lang.lexer import LexError, Token, TokenKind, tokenize


def kinds(source):
    return [(t.kind, t.text) for t in tokenize(source) if t.kind is not TokenKind.EOF]


class TestBasics:
    def test_empty(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_identifiers_and_keywords(self):
        assert kinds("foo while bar_2 if") == [
            (TokenKind.IDENT, "foo"),
            (TokenKind.KEYWORD, "while"),
            (TokenKind.IDENT, "bar_2"),
            (TokenKind.KEYWORD, "if"),
        ]

    def test_integers(self):
        assert kinds("0 42 0x1F") == [
            (TokenKind.INT, "0"),
            (TokenKind.INT, "42"),
            (TokenKind.INT, "0x1F"),
        ]

    def test_maximal_munch_punctuation(self):
        assert [text for __, text in kinds("->>= ==!=&&")] == [
            "->", ">=", "==", "!=", "&&",
        ]

    def test_arrow_vs_minus(self):
        assert [text for __, text in kinds("a-b a->b")] == [
            "a", "-", "b", "a", "->", "b",
        ]

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a $ b")


class TestComments:
    def test_line_comment(self):
        assert kinds("a // comment here\nb") == [
            (TokenKind.IDENT, "a"),
            (TokenKind.IDENT, "b"),
        ]

    def test_block_comment(self):
        assert kinds("a /* x\ny */ b") == [
            (TokenKind.IDENT, "a"),
            (TokenKind.IDENT, "b"),
        ]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* never ends")


class TestPositions:
    def test_line_numbers(self):
        tokens = tokenize("a\nb\n  c")
        a, b, c = tokens[:3]
        assert (a.line, b.line, c.line) == (1, 2, 3)
        assert c.column == 3

    def test_position_after_block_comment(self):
        tokens = tokenize("/* one\ntwo */ x")
        assert tokens[0].line == 2

    def test_repr(self):
        token = Token(TokenKind.IDENT, "x", 1, 1)
        assert "IDENT" in repr(token)
