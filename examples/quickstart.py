"""Quickstart: profile a workload with WHOMP and LEAP.

Runs the gzip stand-in workload on the simulated process, collects both
object-relative profiles from the same trace, and prints the headline
numbers. Run with::

    python examples/quickstart.py
"""

from repro import LeapProfiler, WhompProfiler
from repro.baselines.rasg import RasgProfiler
from repro.workloads.registry import create


def main() -> None:
    # 1. Record a trace: the workload drives a simulated process whose
    #    allocator/linker produce realistic raw-address artifacts.
    workload = create("gzip", scale=0.25)
    trace = workload.trace()
    print(f"trace: {trace.access_count} accesses "
          f"({trace.raw_size_bytes()} raw bytes)")

    # 2. WHOMP: lossless object-relative profile (the OMSG).
    whomp = WhompProfiler().profile(trace)
    rasg = RasgProfiler().profile(trace)
    print("\nWHOMP (lossless):")
    print(f"  OMSG size: {whomp.size_bytes_varint()} bytes "
          f"({whomp.size()} grammar symbols)")
    print(f"  RASG size: {rasg.size_bytes_varint()} bytes (raw-address baseline)")
    improvement = 1 - whomp.size_bytes_varint() / rasg.size_bytes_varint()
    print(f"  compression over RASG: {improvement:.1%}")
    print(f"  per-dimension grammar sizes: {whomp.dimension_sizes()}")

    # Losslessness: the OMSG plus the object table reproduce the trace.
    original = [(e.instruction_id, e.address) for e in trace.accesses()]
    assert whomp.reconstruct_accesses() == original
    print("  lossless round-trip: OK")

    # 3. LEAP: compact lossy profile indexed by instruction.
    leap = LeapProfiler().profile(trace)
    print("\nLEAP (lossy, 30-LMAD budget):")
    print(f"  profile size: {leap.size_bytes()} bytes "
          f"({leap.compression_ratio(trace.raw_size_bytes()):.0f}x compression)")
    print(f"  accesses captured: {leap.accesses_captured():.1%}")
    print(f"  instructions captured: {leap.instructions_captured():.1%}")


if __name__ == "__main__":
    main()
