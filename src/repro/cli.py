"""``repro-profile``: the command-line profiler front-end.

Subcommands::

    repro-profile run <workload> [--profiler whomp|leap|both] [-o DIR]
        Run a registered workload and collect profiles to files.

    repro-profile lang <source.mir> [--profiler ...] [-o DIR]
        Interpret a mini-IR source file under instrumentation.

    repro-profile check <source.mir>... [--json]
        Statically analyze mini-IR sources (MIRCHECK): lint diagnostics
        plus static LMAD classification.  Exit 0 when clean, 1 when any
        diagnostic fired, 2 on a parse/lex error.

    repro-profile diff <a> <b> [--json]
        Structurally diff two saved profiles of the same format and
        detect regressions (compression-ratio or capture degradation).
        Exit 0 when clean, 1 when regressions are detected, 2 on a
        bad input.

    repro-profile stats <workload> [--json]
        Print trace statistics (instruction mix, footprint, reuse).

    repro-profile list
        List registered workloads.

``run`` and ``lang`` accept ``--jobs N`` to compress the decomposed
streams in up to N worker processes (profile outputs are identical to
the serial run) and ``--degraded`` to quarantine untrustworthy tuples
instead of failing (profiles then report a capture-completeness ratio;
see README's "Resilience" section).  Every profiling subcommand accepts
``--telemetry [report|json|prom]``
(optionally with ``--telemetry-out PATH``) to self-profile the pipeline:
a span tree timing trace collection, translation, decomposition, and
compression, plus the metric registry described in README's
"Observability" section.

Profiles are written in the versioned JSON formats of
:mod:`repro.core.profile_io` and can be reloaded for post-processing.
``run`` and ``lang`` also accept ``--format binary`` to write the
compact BINCAP binary encoding (``*.whomp.bin`` / ``*.leap.bin``);
``dump`` and ``diff`` read either encoding transparently.
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import asdict
from typing import List, Optional

from repro.analysis.tracestats import characterize, format_statistics
from repro.core.events import Trace
from repro.core.profile_io import SERIALIZATIONS, save
from repro.profilers.leap import LeapProfiler
from repro.profilers.whomp import WhompProfiler
from repro.telemetry import MODES, NULL_TELEMETRY, Telemetry, emit
from repro.workloads.registry import all_names, create


def _collect_workload_trace(
    name: str, scale: float, seed: int, allocator: str, telemetry=None
) -> Trace:
    telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
    with telemetry.span("trace-collection") as span:
        trace = create(name, scale=scale, seed=seed).trace(
            allocator=allocator, telemetry=telemetry
        )
        span.add_items(trace.access_count, "accesses")
    return trace


def _collect_lang_trace(path: str, telemetry=None) -> Trace:
    from repro.lang.interp import run_source

    telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
    with open(path) as handle:
        source = handle.read()
    with telemetry.span("trace-collection") as span:
        result, interpreter = run_source(source)
        trace = interpreter.process.trace
        span.add_items(trace.access_count, "accesses")
    print(f"program returned {result}")
    return trace


def _write_profiles(
    trace: Trace, profiler: str, out_dir: str, stem: str, telemetry=None,
    jobs: int = 1, degraded: bool = False, fmt: str = "json",
) -> None:
    """Profile ``trace`` and write each profile atomically (a crash
    mid-write leaves the previous file, never a truncated one).

    ``degraded`` runs the profilers behind a shared quarantine: tuples
    the compressors cannot be trusted with are diverted instead of
    raising, and each profile reports its capture-completeness ratio.
    """
    quarantine = None
    if degraded:
        from repro.resilience import Quarantine

        quarantine = Quarantine()
        if telemetry is not None and telemetry.events is not None:
            quarantine.events = telemetry.events
    suffix = "json" if fmt == "json" else "bin"
    if profiler in ("whomp", "both"):
        profile = WhompProfiler(
            telemetry=telemetry, jobs=jobs, quarantine=quarantine
        ).profile(trace)
        path = os.path.join(out_dir, f"{stem}.whomp.{suffix}")
        save(profile, path, fmt=fmt)
        completeness = (
            f", {profile.capture_completeness:.1%} capture completeness"
            if degraded
            else ""
        )
        print(
            f"WHOMP: {profile.size_bytes_varint()} bytes "
            f"({profile.size()} symbols){completeness} -> {path}"
        )
    if profiler in ("leap", "both"):
        profile = LeapProfiler(
            telemetry=telemetry, jobs=jobs, quarantine=quarantine
        ).profile(trace)
        path = os.path.join(out_dir, f"{stem}.leap.{suffix}")
        save(profile, path, fmt=fmt)
        completeness = (
            f", {profile.capture_completeness:.1%} capture completeness"
            if degraded
            else ""
        )
        print(
            f"LEAP:  {profile.size_bytes()} bytes, "
            f"{profile.accesses_captured():.1%} of accesses captured"
            f"{completeness} -> {path}"
        )
    if quarantine is not None and quarantine.total:
        print(
            f"quarantined {quarantine.total} tuple(s): "
            + ", ".join(
                f"{reason}={count}"
                for reason, count in sorted(quarantine.reasons.items())
            )
        )


def _dump_profile(path: str, limit: int, parser) -> int:
    """Pretty-print a saved WHOMP or LEAP profile (either encoding)."""
    from repro.core.profile_io import ProfileFormatError, load, sniff_format

    if not os.path.exists(path):
        parser.error(f"no such file: {path}")
    try:
        with open(path, "rb") as handle:
            kind = sniff_format(handle.read())
    except (OSError, ProfileFormatError):
        kind = None
    if kind == "whomp":
        try:
            data = load(path)
        except ProfileFormatError as exc:
            parser.error(f"corrupt profile {path}: {exc}")
        print(f"WHOMP profile: {data['access_count']} accesses")
        print("groups:")
        for group_id, label in sorted(data["group_labels"].items())[:limit]:
            print(f"  {group_id:4d}  {label}")
        for name, stream in data["streams"].items():
            head = " ".join(str(v) for v in stream[: min(12, limit)])
            print(f"{name} stream ({len(stream)} values): {head} ...")
        return 0
    if kind == "leap":
        try:
            profile = load(path)
        except ProfileFormatError as exc:
            parser.error(f"corrupt profile {path}: {exc}")
        print(
            f"LEAP profile: {profile.access_count} accesses, "
            f"{len(profile.entries)} (instruction, group) entries, "
            f"{profile.accesses_captured():.1%} captured"
        )
        for (instruction, group), entry in sorted(profile.entries.items())[:limit]:
            kind_name = profile.kinds[instruction].value
            print(
                f"  instr {instruction:4d} ({kind_name:5s}) group {group:3d}: "
                f"{len(entry.lmads)} LMADs, "
                f"{entry.captured_symbols}/{entry.total_symbols} captured"
            )
            for lmad in entry.lmads[: min(3, limit)]:
                print(f"      {lmad}")
        return 0
    parser.error(f"unrecognized profile format {kind!r}")
    return 2


def _run_diff(path_a: str, path_b: str, as_json: bool, parser) -> int:
    """Diff two saved profiles; exit 1 when regressions are detected.

    A thin wrapper over :mod:`repro.store.diff`: the same differ the
    profile store's daemon and ``repro-serve diff`` use, pointed at two
    loose files.
    """
    import json as json_module

    from repro.core.profile_io import ProfileFormatError
    from repro.store.diff import detect_regressions, diff_blobs, render_diff

    for path in (path_a, path_b):
        if not os.path.exists(path):
            parser.error(f"no such file: {path}")
    try:
        with open(path_a, "rb") as handle:
            data_a = handle.read()
        with open(path_b, "rb") as handle:
            data_b = handle.read()
        diff = diff_blobs(
            data_a, data_b,
            label_a=os.path.basename(path_a),
            label_b=os.path.basename(path_b),
        )
    except (OSError, ProfileFormatError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    regressions = detect_regressions(diff)
    if as_json:
        payload = diff.to_json()
        payload["regressions"] = [r.to_json() for r in regressions]
        print(json_module.dumps(payload, indent=2, sort_keys=True))
    else:
        print(render_diff(diff, regressions))
    return 1 if regressions else 0


def _run_check(
    paths: List[str], as_json: bool, static: bool, as_sarif: bool = False
) -> int:
    """MIRCHECK driver: lint every source, optionally classify accesses.

    Exit codes: 0 all clean, 1 diagnostics reported, 2 parse/lex error.
    """
    import json as json_module

    from repro.lang import LangError, parse
    from repro.lang.analysis import StaticLmadAnalyzer, lint_program

    reports = []
    had_diagnostics = False
    for path in paths:
        try:
            with open(path) as handle:
                source = handle.read()
            program = parse(source)
        except LangError as exc:
            print(
                f"{path}:{exc.line}:{exc.column}: {exc.message}",
                file=sys.stderr,
            )
            return 2
        diagnostics = lint_program(program, source)
        classes = {}
        if static and any(f.name == "main" for f in program.functions):
            result = StaticLmadAnalyzer(program).run()
            classes = {
                instr.name: instr.classification
                for instr in result.instructions.values()
            }
        if diagnostics:
            had_diagnostics = True
        reports.append((path, diagnostics, classes))

    if as_sarif:
        # shared reporter with repro-lint: one SARIF emitter, two tools
        from repro.lang.analysis.diagnostics import CODES as MIR_CODES
        from repro.selfcheck.reporting import render_sarif

        records = [
            {
                "code": diagnostic.code,
                "severity": diagnostic.severity,
                "path": path,
                "line": diagnostic.line,
                "column": diagnostic.column,
                "message": diagnostic.message,
            }
            for path, diagnostics, __ in reports
            for diagnostic in diagnostics
        ]
        print(render_sarif(records, "mircheck", MIR_CODES))
        return 1 if had_diagnostics else 0

    if as_json:
        payload = {
            "files": [
                {
                    "path": path,
                    "diagnostics": [d.to_dict() for d in diagnostics],
                    "classifications": dict(sorted(classes.items())),
                }
                for path, diagnostics, classes in reports
            ],
            "total_diagnostics": sum(
                len(diagnostics) for __, diagnostics, __ in reports
            ),
        }
        print(json_module.dumps(payload, indent=2, sort_keys=True))
    else:
        for path, diagnostics, classes in reports:
            for diagnostic in diagnostics:
                print(diagnostic.render(path))
            if classes:
                regular = sum(
                    1 for value in classes.values()
                    if value == "proved-regular"
                )
                print(
                    f"{path}: {len(diagnostics)} diagnostic(s), "
                    f"{regular}/{len(classes)} instructions proved regular"
                )
            else:
                print(f"{path}: {len(diagnostics)} diagnostic(s)")
    return 1 if had_diagnostics else 0


def _add_jobs_argument(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="compress decomposed streams with up to N worker processes "
        "(0 = all CPUs; 1 = serial; output is identical either way)",
    )


def _add_telemetry_arguments(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--telemetry",
        choices=MODES,
        help="self-profile the pipeline and print spans/metrics in the "
        "chosen format",
    )
    subparser.add_argument(
        "--telemetry-out",
        metavar="PATH",
        help="write the telemetry output to PATH instead of stdout",
    )
    subparser.add_argument(
        "--trace-out",
        metavar="PATH",
        help="trace the run (TRACELINK) and write its structured "
        "events as JSONL to PATH; implies telemetry collection",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-profile",
        description="Object-relative memory profiling front-end.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="profile a registered workload")
    run.add_argument("workload", help="workload name (see `list`)")
    run.add_argument("--profiler", choices=("whomp", "leap", "both"), default="both")
    run.add_argument("--scale", type=float, default=1.0)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--allocator", default="first-fit")
    run.add_argument("-o", "--out", default=".", help="output directory")
    run.add_argument(
        "--degraded",
        action="store_true",
        help="quarantine untrustworthy tuples instead of failing; "
        "profiles report capture completeness",
    )
    run.add_argument(
        "--format", choices=SERIALIZATIONS, default="json", dest="fmt",
        help="profile file encoding: json (readable) or binary (compact "
        "BINCAP, *.whomp.bin / *.leap.bin)",
    )
    _add_jobs_argument(run)
    _add_telemetry_arguments(run)

    lang = sub.add_parser("lang", help="profile a mini-IR source file")
    lang.add_argument("source", help="path to the .mir source")
    lang.add_argument("--profiler", choices=("whomp", "leap", "both"), default="both")
    lang.add_argument("-o", "--out", default=".", help="output directory")
    lang.add_argument(
        "--degraded",
        action="store_true",
        help="quarantine untrustworthy tuples instead of failing; "
        "profiles report capture completeness",
    )
    lang.add_argument(
        "--format", choices=SERIALIZATIONS, default="json", dest="fmt",
        help="profile file encoding: json (readable) or binary (compact "
        "BINCAP, *.whomp.bin / *.leap.bin)",
    )
    _add_jobs_argument(lang)
    _add_telemetry_arguments(lang)

    check = sub.add_parser(
        "check", help="statically analyze mini-IR sources (MIRCHECK)"
    )
    check.add_argument(
        "sources", nargs="+", help="paths to .mir sources to analyze"
    )
    check.add_argument(
        "--json", action="store_true", dest="as_json",
        help="machine-readable report on stdout",
    )
    check.add_argument(
        "--sarif", action="store_true",
        help="SARIF 2.1.0 report on stdout (same reporter as repro-lint)",
    )
    check.add_argument(
        "--no-static", action="store_true",
        help="skip static LMAD classification (lint only)",
    )

    diff = sub.add_parser(
        "diff", help="structurally diff two saved profiles"
    )
    diff.add_argument("a", help="baseline profile file")
    diff.add_argument("b", help="candidate profile file")
    diff.add_argument(
        "--json", action="store_true", dest="as_json",
        help="machine-readable diff (with regression verdicts) on stdout",
    )

    stats = sub.add_parser("stats", help="print trace statistics")
    stats.add_argument("workload", help="workload name (see `list`)")
    stats.add_argument("--scale", type=float, default=1.0)
    stats.add_argument("--seed", type=int, default=0)
    stats.add_argument("--allocator", default="first-fit")
    stats.add_argument(
        "--no-reuse", action="store_true", help="skip the reuse-distance pass"
    )
    stats.add_argument(
        "--json",
        action="store_true",
        help="print the statistics as JSON instead of text",
    )
    _add_telemetry_arguments(stats)

    sub.add_parser("list", help="list registered workloads")

    dump = sub.add_parser("dump", help="inspect a saved profile file")
    dump.add_argument(
        "path", help="a saved profile file (JSON or BINCAP binary)"
    )
    dump.add_argument(
        "--limit", type=int, default=20, help="max rows to print per section"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        for name in all_names():
            workload = create(name, scale=0.01)
            print(f"{name:<14} {workload.description}")
        return 0

    telemetry_mode = getattr(args, "telemetry", None)
    trace_out = getattr(args, "trace_out", None)
    telemetry = (
        Telemetry() if (telemetry_mode or trace_out) else NULL_TELEMETRY
    )
    obs_state = None
    if trace_out:
        from repro.obs import start_tracing

        obs_state = start_tracing(telemetry, trace_out=trace_out)

    def finish_trace() -> None:
        if obs_state is None:
            return
        from repro.obs import finish_tracing

        context, events = obs_state
        finish_tracing(
            telemetry, context, events,
            meta={"command": f"repro-profile {args.command}"},
        )
        print(f"trace {context.trace_id}")

    if args.command == "run":
        try:
            trace = _collect_workload_trace(
                args.workload, args.scale, args.seed, args.allocator,
                telemetry=telemetry,
            )
        except KeyError as exc:
            parser.error(str(exc))
        print(f"trace: {trace.access_count} accesses")
        _write_profiles(
            trace, args.profiler, args.out, args.workload, telemetry=telemetry,
            jobs=args.jobs, degraded=args.degraded, fmt=args.fmt,
        )
        finish_trace()
        emit(telemetry, telemetry_mode, args.telemetry_out)
        return 0

    if args.command == "diff":
        return _run_diff(args.a, args.b, args.as_json, parser)

    if args.command == "check":
        for path in args.sources:
            if not os.path.exists(path):
                parser.error(f"no such file: {path}")
        return _run_check(
            args.sources, args.as_json, not args.no_static, args.sarif
        )

    if args.command == "lang":
        if not os.path.exists(args.source):
            parser.error(f"no such file: {args.source}")
        from repro.lang import LangError

        try:
            trace = _collect_lang_trace(args.source, telemetry=telemetry)
        except LangError as exc:
            print(
                f"{args.source}:{exc.line}:{exc.column}: {exc.message}",
                file=sys.stderr,
            )
            return 2
        print(f"trace: {trace.access_count} accesses")
        stem = os.path.splitext(os.path.basename(args.source))[0]
        _write_profiles(
            trace, args.profiler, args.out, stem, telemetry=telemetry,
            jobs=args.jobs, degraded=args.degraded, fmt=args.fmt,
        )
        finish_trace()
        emit(telemetry, telemetry_mode, args.telemetry_out)
        return 0

    if args.command == "dump":
        return _dump_profile(args.path, args.limit, parser)

    if args.command == "stats":
        try:
            trace = _collect_workload_trace(
                args.workload, args.scale, args.seed, args.allocator,
                telemetry=telemetry,
            )
        except KeyError as exc:
            parser.error(str(exc))
        with telemetry.span("characterization") as span:
            statistics = characterize(trace, with_reuse=not args.no_reuse)
            span.add_items(statistics.accesses, "accesses")
        if args.json:
            import json as json_module

            payload = asdict(statistics)
            payload["load_fraction"] = statistics.load_fraction
            print(json_module.dumps(payload, indent=2))
        else:
            print(format_statistics(statistics))
        finish_trace()
        emit(telemetry, telemetry_mode, args.telemetry_out)
        return 0

    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
